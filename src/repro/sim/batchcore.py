"""The ``batch`` simulation engine: trace-compiled, cross-warp execution.

Where the ``fast`` engine interprets one pre-decoded handler per warp per
issue, the batch engine executes whole *rounds*: all resident warps of a core
sitting at the same PC issue on consecutive slots (that is exactly what the
round-robin scheduler would do), so the round's data work collapses into one
2-D numpy operation over the core's *stacked* register file -- one ufunc, one
gather or one scatter per PC per core instead of per warp.  Runs of
element-wise PCs stream as compiled traces (:mod:`repro.sim.compile`) whose
cross-warp hazard feasibility was solved in closed form at compile time.

Bit-identity with the reference engine holds **by construction**, not by
sampling:

* A round only streams when a vectorized guard proves the exact schedule the
  reference scheduler would produce: every warp's scoreboard/issue-spacing
  readiness is checked against its slot's issue cycle, the round-robin
  rotation makes slot ``k``'s warp the unique priority head at its issue
  cycle, and a full round leaves ``rr_next`` exactly where per-warp issue
  would have.
* Rounds whose op holds a functional unit (multi-line memory, SFU intervals)
  issue with the exact spacing the FU hold forces.  The hold gates every warp
  still waiting at the round's PC, but a warp that has already issued moves
  to the *next* PC and the reference would slot that instruction into the
  hold's gap cycles -- so ragged rounds additionally carry a *steal guard*:
  they stream only when every issued warp's next instruction provably cannot
  become ready before the window's contiguous tail of issue cycles (where
  round-robin priority excludes it anyway).  The window's
  issue/stall/active-cycle accounting reproduces the visited-cycle arithmetic
  of the reference loop, gap cycles included.
* Memory walks still run per warp in slot order so LRU state and DRAM-queue
  timing mutate in the same order as the reference engine.  Cross-core
  windows interleave walks (and, when stores are involved, data) in
  (cycle, core) order.
* Cores that cannot stream but whose cached ``next_event_hint`` proves they
  cannot issue inside the window are carried as pure stallers -- exactly what
  the reference loop would have recorded for them.
* Everything the guards cannot prove -- divergent PCs, barriers, masked or
  out-of-bounds memory, GTO scheduling, drained warps -- falls back to a
  verbatim copy of the fast engine's event-skipping loop, which is itself
  proven bit-identical to the reference.

The differential suite, the golden counters and the fuzzing oracle
(``tests/test_engine_fuzz.py``) hold the engine to that guarantee.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import List, Optional

import numpy as np

from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_ARG_SLOTS, Csr
from repro.sim.compile import CompiledProgram, compile_program
from repro.sim.config import ArchConfig
from repro.sim.core import NEVER, SimulationError
from repro.sim.fastcore import FastSimtCore, _UNIFORM_CSR_ATTRS
from repro.sim.memory.hierarchy import MemoryHierarchy
from repro.sim.memory.mainmem import MainMemory
from repro.sim.stats import PerfCounters
from repro.telemetry.recorder import RECORDER


#: Promoted CSRs whose value is identical for every warp of a core during one
#: call (argument CSRs are too: the dispatcher hands every warp the same
#: ``args`` mapping), so one slab ``fill`` from warp 0 stages them.
_CORE_UNIFORM_CSRS = frozenset(
    csr for csr in _UNIFORM_CSR_ATTRS if csr is not Csr.WARP_ID
)


def _fill_csr_slab(slab: np.ndarray, warps, csr_number: int) -> None:
    """Stage a promoted CSR's per-warp values into its ``(warps, lanes)``
    pseudo-register slab, mirroring the fast engine's per-kind CSRR reads.

    The dispatcher gives every warp of a call the same hardware-shape and
    argument values, so those stage as one ``fill`` -- guarded by an actual
    equality check so hand-built launches with divergent values stay exact.
    """
    if csr_number in _CORE_UNIFORM_CSRS:
        attr = _UNIFORM_CSR_ATTRS[csr_number]
        value = getattr(warps[0].csr, attr)
        if all(getattr(w.csr, attr) == value for w in warps):
            slab.fill(value)
        else:
            for k, w in enumerate(warps):
                slab[k].fill(getattr(w.csr, attr))
    elif Csr.ARG_BASE <= csr_number < Csr.ARG_BASE + NUM_ARG_SLOTS:
        slot = csr_number - Csr.ARG_BASE
        args0 = warps[0].csr.args
        if all(w.csr.args is args0 or w.csr.args == args0 for w in warps):
            slab.fill(args0.get(slot, 0.0))
        else:
            for k, w in enumerate(warps):
                slab[k].fill(w.csr.args.get(slot, 0.0))
    elif csr_number == Csr.THREAD_ID:
        slab[:] = warps[0].lane_ids
    elif csr_number == Csr.WARP_ID:
        for k, w in enumerate(warps):
            slab[k].fill(w.csr.warp_id)
    else:
        attr = ("workgroup_ids" if csr_number == Csr.WORKGROUP_ID
                else "local_counts")
        slab.fill(0.0)
        for k, w in enumerate(warps):
            values = getattr(w.csr, attr)
            slab[k, :len(values)] = values


class BatchSimtCore(FastSimtCore):
    """SIMT core executing compiled batch programs over stacked warp state."""

    engine_name = "batch"

    def __init__(self, core_id: int, config: ArchConfig, program: Program,
                 hierarchy: MemoryHierarchy, memory: MainMemory,
                 counters: PerfCounters, tracer=None,
                 compiled: Optional[CompiledProgram] = None):
        if compiled is None:
            compiled = compile_program(program, config)
        super().__init__(core_id, config, program, hierarchy, memory,
                         counters, tracer=tracer, decoded=compiled.decoded)
        self._compiled = compiled
        self._stream_enabled = False   # armed by _adopt, dropped on first halt
        self._no_stream_pc = -1        # memo: last PC planning refused statically

    # ------------------------------------------------------------------
    def _adopt(self) -> None:
        """Re-home per-warp state into core-wide stacks (called once per call).

        Registers become one ``(num_registers, warps, lanes)`` float64 stack:
        ``_slabs[r]`` is the (warps, lanes) slab batched rounds operate on,
        while each warp's ``rows[r]`` is rebound to its contiguous row view of
        the same memory -- so the fallback path's per-warp handlers keep
        working unchanged on shared storage.  The scoreboard likewise becomes
        one (warps, registers) int64 array with per-warp row views.
        """
        warps = self.warps
        n = len(warps)
        num_regs = self.program.num_registers
        lanes = self.config.threads_per_warp
        compiled = self._compiled
        stack = np.empty((compiled.num_slabs, n, lanes), dtype=np.float64)
        reg_ready = np.zeros((n, num_regs), dtype=np.int64)
        for k, w in enumerate(warps):
            stack[:num_regs, k, :] = w.regs
            w.regs = stack[:num_regs, k, :]
            w.rows = [stack[r, k] for r in range(num_regs)]
            for reg, ready in enumerate(w.reg_ready):
                if ready:
                    reg_ready[k, reg] = ready
            w.reg_ready = reg_ready[k]
        for csr_number, slot in compiled.csr_slots.items():
            _fill_csr_slab(stack[num_regs + slot], warps, csr_number)
        self._stack = stack
        self._slabs = list(stack)
        self._rr2 = reg_ready
        self._scratch2 = np.empty((n, lanes), dtype=np.float64)
        self._mask2d = np.zeros((n, lanes), dtype=bool)
        self._masks_key = None
        self._all_full = False
        self._active_total = 0
        self._full_warp_mask = (1 << lanes) - 1
        self._lane_bits = np.left_shift(1, np.arange(lanes, dtype=np.int64))
        self._slot_cache = {}
        self._stream_enabled = self._is_rr and n >= 2
        # Streaming keeps pc (uniform) and next-issue cycles core-resident;
        # warp objects go stale between commits and are synced lazily before
        # anything per-warp (fallback cycles, scalar/SFU handlers) runs.
        self._lazy = False
        self._pc_u = -1
        self._ni = np.zeros(n, dtype=np.int64)
        # Plan-attempt gate: after a divergent scan, re-attempt only when the
        # rotation returns to the last phase uniformity was observed at (or
        # after an event jump), so long divergent phases don't pay a failed
        # plan per visited cycle.
        self._div_gate = False
        self._probe = True
        # Non-rr schedulers never stream, so the probe phase is moot there
        # (and ``_rr_next`` only exists under round-robin).
        self._probe_rr = self._rr_next if self._is_rr else 0

    def _refresh_masks(self) -> None:
        """Recompute the (warps, lanes) bool mask when any warp's mask moved."""
        warps = self.warps
        key = [w.active_mask for w in warps]
        if key == self._masks_key:
            return
        self._masks_key = key
        full = self._full_warp_mask
        total = 0
        all_full = True
        for mask in key:
            total += mask.bit_count()
            if mask != full:
                all_full = False
        self._all_full = all_full
        self._active_total = total
        if not all_full:
            mask2d = self._mask2d
            mask2d[:] = False
            for k, w in enumerate(warps):
                sel = w.selection()
                if sel is None:
                    mask2d[k] = True
                else:
                    mask2d[k, sel] = True

    def _round_slots(self, start: int):
        """(order, slots): warp indices in issue order for rotation ``start``
        and, inverse, each warp's slot as an int64 array in attach order."""
        cached = self._slot_cache.get(start)
        if cached is None:
            n = len(self.warps)
            rr_n = self._rr_n
            order = [i for off in range(rr_n)
                     if (i := (start + off) % rr_n) < n]
            slots = np.empty(n, dtype=np.int64)
            for k, i in enumerate(order):
                slots[i] = k
            cached = (order, slots)
            self._slot_cache[start] = cached
        return cached


def _sync_warps(core: BatchSimtCore) -> None:
    """Write the core-resident streaming state back into the warp objects
    (their pc/next-issue fields are stale between lazy commits)."""
    if not core._lazy:
        return
    core._lazy = False
    pc = core._pc_u
    ni = core._ni
    for k, w in enumerate(core.warps):
        w.pc = pc
        w.next_issue_cycle = int(ni[k])
        w._d_cache = None


# ----------------------------------------------------------------------
# window plans.  Every plan describes a window starting at the attempt cycle:
#   issue cycles   cycle + offset[k] for slot k (offsets in *attach* order
#                  are what the guards and scoreboards consume)
#   .window        cycles consumed: last issue offset + 1
#   .gaps          non-issue cycles the reference loop would still visit
#                  (the cycle right after an issue whose FU hold spans more
#                  than one cycle) -- they charge every busy core one stall
#   .ragged        True when the issue cycles are not simply cycle+slot;
#                  ragged plans stream only when they are the sole streamer
# ----------------------------------------------------------------------
class _TracePlan:
    """``rounds`` consecutive ewise PCs streamed for all warps of one core."""

    __slots__ = ("core", "n", "rounds", "order", "slots", "trace", "pc")
    is_mem = False
    ragged = False
    gaps = 0

    def __init__(self, core, n, rounds, order, slots, trace, pc):
        self.core = core
        self.n = n
        self.rounds = rounds
        self.order = order
        self.slots = slots
        self.trace = trace
        self.pc = pc

    def window(self, rounds: int) -> int:
        return rounds * self.n

    def commit(self, cycle: int, rounds: int, tracer) -> None:
        core = self.core
        core._refresh_masks()
        sel = None if core._all_full else core._mask2d
        slabs = core._slabs
        scratch = core._scratch2
        ops = self.trace.ops
        n = self.n
        pc0 = self.pc
        pc_issues = core._pc_issues
        pc_lanes = core._pc_lanes
        active_total = core._active_total
        for j in range(rounds):
            ops[j].run2d(slabs, scratch, sel)
            pc_issues[pc0 + j] += n
            pc_lanes[pc0 + j] += active_total
        rr2 = core._rr2
        base = cycle + self.slots
        trace = self.trace
        for j, dst, lat in zip(trace.write_rounds, trace.write_dsts,
                               trace.write_latencies):
            if j >= rounds:
                break
            rr2[:, dst] = base + (j * n + lat)
        next_issue_base = cycle + (rounds - 1) * n + 1
        new_pc = pc0 + rounds
        core._rr_next = (self.order[-1] + 1) % core._rr_n
        if tracer is None:
            core._pc_u = new_pc
            np.add(self.slots, next_issue_base, out=core._ni)
            core._lazy = True
            return
        warps = core.warps
        for k, i in enumerate(self.order):
            w = warps[i]
            w.pc = new_pc
            w.next_issue_cycle = next_issue_base + k
            w._d_cache = None
        core._lazy = False
        decode = core._decode
        core_id = core.core_id
        for j in range(rounds):
            instr = decode[pc0 + j].instr
            round_start = cycle + j * n
            for k, i in enumerate(self.order):
                w = warps[i]
                tracer.record(cycle=round_start + k, core=core_id,
                              warp=w.warp_id, pc=pc0 + j,
                              opcode=instr.opcode, mask=w.active_mask,
                              section=instr.section)


class _ScalarPlan:
    """One non-batchable PC streamed by running the fast per-warp handlers in
    slot order -- the scheduler scan and readiness re-checks are skipped, the
    handlers themselves are the proven fast-engine ones."""

    __slots__ = ("core", "n", "order", "op", "pc")
    is_mem = False
    ragged = False
    gaps = 0
    rounds = 1

    def __init__(self, core, n, order, op, pc):
        self.core = core
        self.n = n
        self.order = order
        self.op = op
        self.pc = pc

    def window(self, rounds: int) -> int:
        return self.n

    def commit(self, cycle: int, rounds: int, tracer) -> None:
        core = self.core
        _sync_warps(core)        # the fast handlers read and write warp state
        op = self.op
        control = op.control
        if control is not None and tracer is None:
            lanes_total = _COMMIT_CONTROL[control](self, cycle)
        else:
            lanes_total = self._commit_generic(cycle, tracer)
        core._pc_issues[self.pc] += self.n
        core._pc_lanes[self.pc] += lanes_total
        core._rr_next = (self.order[-1] + 1) % core._rr_n
        # Control handlers may have moved masks; rebuild lazily next round.
        core._masks_key = None

    def _commit_generic(self, cycle: int, tracer) -> int:
        core = self.core
        warps = core.warps
        op = self.op
        run = op.run
        dst = op.dst
        default_latency = op.latency
        pc = self.pc
        instr = op.instr
        core_id = core.core_id
        lanes_total = 0
        for k, i in enumerate(self.order):
            w = warps[i]
            at = cycle + k
            lanes_total += w.active_mask.bit_count()
            if tracer is not None:
                tracer.record(cycle=at, core=core_id, warp=w.warp_id, pc=pc,
                              opcode=instr.opcode, mask=w.active_mask,
                              section=instr.section)
            latency = run(core, w, at)
            if latency is None:
                latency = default_latency
            if dst is not None:
                w.reg_ready[dst] = at + latency
            w.next_issue_cycle = at + 1
            w._d_cache = None
        return lanes_total

    # -- batched control rounds -----------------------------------------
    # Inline replicas of the reference control handlers with the per-lane
    # predicate loops vectorised over the whole round (one slab compare and
    # bit-pack).  Stack entries, masks, pcs, counters and error messages
    # match the reference handlers exactly.

    def _commit_split(self, cycle: int) -> int:
        core = self.core
        warps = core.warps
        instr = self.op.instr
        (cond_reg,) = instr.srcs
        taken_all = (core._slabs[cond_reg] != 0.0) @ core._lane_bits
        else_pc, join_pc = instr.target, instr.target2
        pc1 = self.pc + 1
        lanes_total = 0
        divergent = 0
        for k, i in enumerate(self.order):
            w = warps[i]
            full = w.active_mask
            lanes_total += full.bit_count()
            taken = int(taken_all[i]) & full
            not_taken = full & ~taken
            if taken and not_taken:
                w.simt_stack.append(("else", not_taken, full, else_pc,
                                     join_pc))
                w.active_mask = taken
                w.pc = pc1
                divergent += 1
            elif taken:
                w.simt_stack.append(("join", full, join_pc))
                w.pc = pc1
            else:
                w.simt_stack.append(("join", full, join_pc))
                w.pc = else_pc
            w.next_issue_cycle = cycle + k + 1
            w._d_cache = None
        core.counters.divergent_branches += divergent
        return lanes_total

    def _commit_join(self, cycle: int) -> int:
        core = self.core
        warps = core.warps
        pc = self.pc
        lanes_total = 0
        for k, i in enumerate(self.order):
            w = warps[i]
            lanes_total += w.active_mask.bit_count()
            if not w.simt_stack:
                raise SimulationError(
                    f"core {core.core_id} warp {w.warp_id}: JOIN with empty "
                    f"SIMT stack at pc {pc}"
                )
            entry = w.simt_stack.pop()
            if entry[0] == "else":
                _, not_taken, full, else_pc, join_pc = entry
                w.simt_stack.append(("join", full, join_pc))
                w.active_mask = not_taken
                w.pc = else_pc
            elif entry[0] == "join":
                _, mask, join_pc = entry
                w.active_mask = mask
                w.pc = join_pc
            else:
                raise SimulationError(
                    f"core {core.core_id} warp {w.warp_id}: JOIN found a "
                    f"{entry[0]!r} entry"
                )
            w.next_issue_cycle = cycle + k + 1
            w._d_cache = None
        return lanes_total

    def _commit_loop_begin(self, cycle: int) -> int:
        warps = self.core.warps
        pc1 = self.pc + 1
        lanes_total = 0
        for k, i in enumerate(self.order):
            w = warps[i]
            mask = w.active_mask
            lanes_total += mask.bit_count()
            w.simt_stack.append(("loop", mask))
            w.pc = pc1
            w.next_issue_cycle = cycle + k + 1
            w._d_cache = None
        return lanes_total

    def _commit_loop_end(self, cycle: int) -> int:
        core = self.core
        warps = core.warps
        instr = self.op.instr
        (cond_reg,) = instr.srcs
        alive_all = (core._slabs[cond_reg] != 0.0) @ core._lane_bits
        target = instr.target
        pc1 = self.pc + 1
        lanes_total = 0
        divergent = 0
        for k, i in enumerate(self.order):
            w = warps[i]
            full = w.active_mask
            lanes_total += full.bit_count()
            alive = int(alive_all[i]) & full
            if alive:
                if alive != full:
                    divergent += 1
                w.active_mask = alive
                w.pc = target
            else:
                if not w.simt_stack or w.simt_stack[-1][0] != "loop":
                    raise SimulationError(
                        f"core {core.core_id} warp {w.warp_id}: LOOP_END "
                        f"without LOOP_BEGIN"
                    )
                _, mask = w.simt_stack.pop()
                w.active_mask = mask
                w.pc = pc1
            w.next_issue_cycle = cycle + k + 1
            w._d_cache = None
        core.counters.divergent_branches += divergent
        return lanes_total

    def _commit_jmp(self, cycle: int) -> int:
        warps = self.core.warps
        target = self.op.instr.target
        lanes_total = 0
        for k, i in enumerate(self.order):
            w = warps[i]
            lanes_total += w.active_mask.bit_count()
            w.pc = target
            w.next_issue_cycle = cycle + k + 1
            w._d_cache = None
        return lanes_total


class _HaltPlan:
    """One HALT round: every warp retires on its slot and the core drains.

    Streaming the drain matters: falling back would pay one visited cycle per
    warp, each rescanning the whole (mostly halted) round-robin order.
    """

    __slots__ = ("core", "n", "order", "op", "pc")
    is_mem = False
    ragged = False
    gaps = 0
    rounds = 1

    def __init__(self, core, n, order, op, pc):
        self.core = core
        self.n = n
        self.order = order
        self.op = op
        self.pc = pc

    def window(self, rounds: int) -> int:
        return self.n

    def commit(self, cycle: int, rounds: int, tracer) -> None:
        core = self.core
        _sync_warps(core)
        warps = core.warps
        pc = self.pc
        instr = self.op.instr
        core_id = core.core_id
        lanes_total = 0
        for k, i in enumerate(self.order):
            w = warps[i]
            lanes_total += w.active_mask.bit_count()
            if tracer is not None:
                tracer.record(cycle=cycle + k, core=core_id, warp=w.warp_id,
                              pc=pc, opcode=instr.opcode, mask=w.active_mask,
                              section=instr.section)
            w.halted = True
            w.next_issue_cycle = cycle + k + 1
            w._d_cache = None
        core._pc_issues[pc] += self.n
        core._pc_lanes[pc] += lanes_total
        core._rr_next = (self.order[-1] + 1) % core._rr_n


_COMMIT_CONTROL = {
    "split": _ScalarPlan._commit_split,
    "join": _ScalarPlan._commit_join,
    "loop_begin": _ScalarPlan._commit_loop_begin,
    "loop_end": _ScalarPlan._commit_loop_end,
    "jmp": _ScalarPlan._commit_jmp,
}


class _SfuPlan:
    """One interval->1 PC streamed with the spacing its FU hold forces.

    Slot ``k`` issues at ``cycle + k * interval``: the previous issue holds
    the unit until exactly that cycle, so no warp still waiting at this PC
    can issue in between.  Warps that already issued sit at the *next* PC --
    the steal guard in :func:`_plan_core` proves none of them becomes ready
    before the final issue cycle, which forces the reference schedule.
    """

    __slots__ = ("core", "n", "order", "op", "pc", "interval")
    is_mem = False
    ragged = True
    rounds = 1

    def __init__(self, core, n, order, op, pc):
        self.core = core
        self.n = n
        self.order = order
        self.op = op
        self.pc = pc
        self.interval = op.interval

    @property
    def gaps(self) -> int:
        # After each issue except the last, the reference loop visits the
        # next cycle, finds nothing ready (FU held) and charges one stall.
        return self.n - 1

    def window(self, rounds: int) -> int:
        return (self.n - 1) * self.interval + 1

    def commit(self, cycle: int, rounds: int, tracer) -> None:
        core = self.core
        _sync_warps(core)        # the fast handlers read and write warp state
        warps = core.warps
        op = self.op
        run = op.run
        dst = op.dst
        default_latency = op.latency
        interval = self.interval
        pc = self.pc
        instr = op.instr
        core._pc_issues[pc] += self.n
        core_id = core.core_id
        lanes_total = 0
        for k, i in enumerate(self.order):
            w = warps[i]
            at = cycle + k * interval
            lanes_total += w.active_mask.bit_count()
            if tracer is not None:
                tracer.record(cycle=at, core=core_id, warp=w.warp_id, pc=pc,
                              opcode=instr.opcode, mask=w.active_mask,
                              section=instr.section)
            latency = run(core, w, at)
            if latency is None:
                latency = default_latency
            if dst is not None:
                w.reg_ready[dst] = at + latency
            w.next_issue_cycle = at + 1
            w._d_cache = None
        core._fu_busy[op.unit_index] = cycle + (self.n - 1) * interval + interval
        core._pc_lanes[pc] += lanes_total
        core._rr_next = (self.order[-1] + 1) % core._rr_n
        core._masks_key = None


class _MemPlan:
    """A memory round: one 2-D gather/scatter plus per-warp hierarchy walks.

    Planned when every warp's lanes are fully active and every coalesced line
    is in bounds.  Warps whose access spans several lines hold the LSU for
    that many cycles, spacing the following slots exactly as the reference
    FU hold would; :func:`run_batch` sequences walks (and data when stores
    are present) across cores in (cycle, core) order.
    """

    __slots__ = ("core", "n", "order", "offsets", "op", "pc", "addr", "lines",
                 "line_counts", "latencies", "is_load", "single", "ragged",
                 "gaps", "_window", "_fu_until")
    is_mem = True
    rounds = 1

    def __init__(self, core, n, order, offsets, op, pc, addr, lines,
                 line_counts, is_load):
        self.core = core
        self.n = n
        self.order = order
        self.offsets = offsets        # warp -> issue offset, attach order
        self.op = op
        self.pc = pc
        self.addr = addr              # (warps, lanes) int64, attach order
        # ``line_counts is None`` marks the common fully-coalesced round:
        # every warp touches exactly one line, ``lines`` is the bare line per
        # slot in issue order and the offsets are simply the slots.
        self.lines = lines
        self.line_counts = line_counts  # per slot, issue order
        self.is_load = is_load
        self.latencies = np.ones(n, dtype=np.int64) if is_load else None
        self.gaps = 0
        self._fu_until = 0            # FU hold past the last multi-line issue
        if line_counts is None:
            self.single = True
            self.ragged = False
            self._window = n
            return
        self.single = False
        offset = 0
        for k, count in enumerate(line_counts):
            if count > 1:
                if k < n - 1:
                    self.gaps += 1
                self._fu_until = offset + count
            offset += count
        # A hold on the *last* slot spills past the window without perturbing
        # any issue cycle inside it, so only interior holds make the plan
        # ragged (non-cycle-aligned).
        self.ragged = self.gaps > 0
        self._window = int(offsets[order[-1]]) + 1

    def window(self, rounds: int) -> int:
        return self._window

    def data_batched(self) -> None:
        """The whole round's values in one numpy call (safe when no other
        core's store interleaves with this round)."""
        core = self.core
        slabs = core._slabs
        op = self.op
        if self.is_load:
            core.memory._data.take(self.addr, out=slabs[op.dst])
        else:
            order = self.order
            addr = self.addr
            values = slabs[op.value_reg]
            if order[0] != 0:
                # Flattened duplicate addresses resolve last-wins, so rows
                # must be laid out in issue (slot) order first.
                idx = np.asarray(order, dtype=np.intp)
                addr = addr[idx]
                values = values[idx]
            core.memory._data[addr.ravel()] = values.ravel()

    def exec_one(self, k: int, cycle: int) -> None:
        """Slot ``k``'s data + walk, for store-interleaved multi-core windows."""
        i = self.order[k]
        core = self.core
        op = self.op
        if self.is_load:
            core.memory._data.take(self.addr[i], out=core._slabs[op.dst][i])
        else:
            core.memory._data[self.addr[i]] = core._slabs[op.value_reg][i]
        self.walk_one(k, cycle)

    def walk_one(self, k: int, cycle: int) -> None:
        core = self.core
        if self.single:
            if self.is_load:
                self.latencies[self.order[k]] = core.hierarchy.load_lines_fast(
                    core.core_id, (self.lines[k],), cycle + k)
            else:
                core.hierarchy.store_lines_fast(core.core_id,
                                                (self.lines[k],), cycle + k)
            return
        i = self.order[k]
        if self.is_load:
            self.latencies[i] = core.hierarchy.load_lines_fast(
                core.core_id, self.lines[i], cycle + int(self.offsets[i]))
        else:
            core.hierarchy.store_lines_fast(core.core_id, self.lines[i],
                                            cycle + int(self.offsets[i]))

    def walks(self, cycle: int) -> None:
        hierarchy = self.core.hierarchy
        core_id = self.core.core_id
        lines = self.lines
        if self.single:
            if self.is_load:
                hierarchy.load_round_fast(core_id, lines, self.latencies,
                                          self.order, cycle)
            else:
                hierarchy.store_round_fast(core_id, lines, cycle)
            return
        offsets = self.offsets
        if self.is_load:
            latencies = self.latencies
            walk = hierarchy.load_lines_fast
            for i in self.order:
                latencies[i] = walk(core_id, lines[i], cycle + int(offsets[i]))
        else:
            walk = hierarchy.store_lines_fast
            for i in self.order:
                walk(core_id, lines[i], cycle + int(offsets[i]))

    def bookkeep(self, cycle: int, tracer) -> None:
        core = self.core
        op = self.op
        n = self.n
        pc = self.pc
        total_lines = n if self.single else sum(self.line_counts)
        core._pc_issues[pc] += n
        core._pc_lanes[pc] += core._active_total
        counters = core.counters
        if self.is_load:
            counters.loads += n
            counters.load_lines += total_lines
            core._rr2[:, op.dst] = cycle + self.offsets + self.latencies
        else:
            counters.stores += n
            counters.store_lines += total_lines
        if self._fu_until:
            core._fu_busy[op.unit_index] = cycle + self._fu_until
        offsets = self.offsets
        core._rr_next = (self.order[-1] + 1) % core._rr_n
        new_pc = pc + 1
        if tracer is None:
            core._pc_u = new_pc
            np.add(offsets, cycle + 1, out=core._ni)
            core._lazy = True
            return
        warps = core.warps
        instr = op.instr
        core_id = core.core_id
        for i in self.order:
            w = warps[i]
            at = cycle + int(offsets[i])
            tracer.record(cycle=at, core=core_id, warp=w.warp_id,
                          pc=pc, opcode=instr.opcode, mask=w.active_mask,
                          section=instr.section)
            w.pc = new_pc
            w.next_issue_cycle = at + 1
            w._d_cache = None
        core._lazy = False


# ----------------------------------------------------------------------
# planning
# ----------------------------------------------------------------------
def _steal_safe(core: BatchSimtCore, op, pc: int, t_attach, tail_abs: int,
                is_load: bool) -> bool:
    """True iff no issued warp can issue its next instruction inside a ragged
    window.

    After slot ``k`` issues at ``t_attach[i]``, its warp advances to
    ``pc + 1`` while later slots are still FU-gated -- at any non-issue cycle
    of the window a ready issued warp would win the round-robin scan, which a
    streamed round cannot reproduce.  Cycles from ``tail_abs`` (the first
    issue after the last interior FU hold) to the window's end are contiguous
    issue cycles where rotation priority always belongs to the issuing slot,
    so the round is exact iff every issued warp's next-instruction readiness
    lands at or past ``tail_abs``.  Readiness is computed exactly: the warp's
    own spacing, the live scoreboard, the round's own destination write, and
    the next op's FU gate.  A next op on the round's *own* unit is gated by
    the round's holds through every gap, which is sufficient on its own.
    """
    decode = core._decode
    pcn = pc + 1
    if pcn >= len(decode):
        return False                 # would run off: let the fallback raise
    (_run, _dst, check_regs, _lat, _interval, unit_index, fu_check,
     _is_mem) = decode[pcn].tup
    if fu_check and unit_index == op.unit_index:
        return True
    ready = t_attach + 1
    rr2 = core._rr2
    for reg in check_regs:
        if reg == op.dst:
            if is_load:
                return False         # walk latency unknown until commit
            cand = t_attach + op.latency
        else:
            cand = rr2[:, reg]
        ready = np.maximum(ready, cand)
    if fu_check:
        ready = np.maximum(ready, core._fu_busy[unit_index])
    return bool(np.all(ready >= tail_abs))


def _plan_core(core: BatchSimtCore, cycle: int):
    """Return a streaming plan for ``core`` at ``cycle``, or None.

    A non-None plan is a *proof obligation met*: committing it reproduces
    exactly the issues the fast/reference loop would perform over the window.
    """
    warps = core.warps
    n = len(warps)
    if core._lazy:
        # Streaming state is core-resident: the pc is uniform by
        # construction (lazy commits only ever advance all warps together)
        # and no streamed op parks a warp at a barrier.
        pc = core._pc_u
        if pc == core._no_stream_pc:
            return None
        own = core._ni
    else:
        w0 = warps[0]
        pc = w0.pc
        if pc == core._no_stream_pc or w0.at_barrier:
            return None
        for k in range(1, n):
            w = warps[k]
            if w.pc != pc or w.at_barrier:
                core._div_gate = True
                return None
        core._div_gate = False
        core._probe_rr = core._rr_next
        own = np.fromiter((w.next_issue_cycle for w in warps), dtype=np.int64,
                          count=n)
    ops = core._compiled.ops
    if pc >= len(ops):
        return None                      # ran off: fallback raises exactly
    op = ops[pc]
    kind = op.kind
    if kind == "stop":
        if op.instr.opcode is Opcode.HALT and core._barrier_waiting == 0:
            # All n warps are in the round, so none can be parked at a
            # barrier this HALT would have to release.
            order, slots = core._round_slots(core._rr_next)
            if not np.all(own <= cycle + slots):
                return None
            return _HaltPlan(core, n, order, op, pc)
        core._no_stream_pc = pc
        return None
    order, slots = core._round_slots(core._rr_next)
    rr2 = core._rr2

    if kind == "ewise":
        # Round 0's registers are entry guards of the trace itself.
        if not np.all(own <= cycle + slots):
            return None
        trace = core._compiled.traces[pc]
        min_warps = trace.min_warps
        length = trace.length
        rounds = 0
        while rounds < length and min_warps[rounds] <= n:
            rounds += 1
        regs = trace.livein_regs
        if regs.size:
            entry_limit = cycle + trace.livein_rounds * n + slots[:, None]
            ok = (rr2[:, regs] <= entry_limit).all(axis=0)
            if not ok.all():
                first_bad = int(trace.livein_rounds[int(np.argmin(ok))])
                if first_bad < rounds:
                    rounds = first_bad
            if rounds == 0:
                return None
        return _TracePlan(core, n, rounds, order, slots, trace, pc)

    if op.check_regs:
        # First maximum makes a fresh array: ``own`` may alias ``core._ni``.
        own = np.maximum(own, rr2[:, op.check_regs[0]])
        for reg in op.check_regs[1:]:
            np.maximum(own, rr2[:, reg], out=own)

    if kind == "scalar":
        if not np.all(own <= cycle + slots):
            return None
        return _ScalarPlan(core, n, order, op, pc)

    if kind == "sfu":
        if core._fu_busy[op.unit_index] > cycle:
            return None
        t_attach = cycle + slots * op.interval
        if not np.all(own <= t_attach):
            return None
        # Every interior issue opens a gap; the contiguous tail is just the
        # last issue cycle.
        if not _steal_safe(core, op, pc, t_attach,
                           cycle + (n - 1) * op.interval, False):
            return None
        return _SfuPlan(core, n, order, op, pc)

    # load / store round
    if core._fu_busy[op.unit_index] > cycle:
        return None
    core._refresh_masks()
    if not core._all_full:
        return None
    addr = core._slabs[op.addr_reg].astype(np.int64)
    if op.offset:
        addr += op.offset
    lines2d = op.to_lines(addr)
    if int(lines2d.min()) < 0 or int(lines2d.max()) >= core._full_lines:
        return None                      # fallback runs the exact raising path
    line0 = lines2d[:, 0]
    if (lines2d == line0[:, None]).all():
        # Fully coalesced round: every warp touches one line, so there is no
        # FU hold and the issue offsets are simply the slots.
        if not np.all(own <= cycle + slots):
            return None
        return _MemPlan(core, n, order, slots, op, pc, addr,
                        line0.take(order).tolist(), None, op.kind == "load")
    # Coalesce per warp in first-appearance lane order (the fast coalescer's
    # request order), then derive each slot's issue offset from the FU hold
    # the preceding slots' line counts force.
    lines = [tuple(dict.fromkeys(row)) for row in lines2d.tolist()]
    line_counts = [len(lines[i]) for i in order]      # issue (slot) order
    offsets = np.empty(n, dtype=np.int64)             # attach order
    offset = 0
    for k, i in enumerate(order):
        offsets[i] = offset
        offset += line_counts[k]
    if not np.all(own <= cycle + offsets):
        return None
    tail_k = -1                       # last interior slot holding the LSU
    for k in range(n - 1):
        if line_counts[k] > 1:
            tail_k = k
    if tail_k >= 0 and not _steal_safe(
            core, op, pc, cycle + offsets,
            cycle + int(offsets[order[tail_k + 1]]), op.kind == "load"):
        return None
    return _MemPlan(core, n, order, offsets, op, pc, addr, lines, line_counts,
                    op.kind == "load")


# ----------------------------------------------------------------------
# the run loop
# ----------------------------------------------------------------------
def run_batch(active_cores: List[BatchSimtCore], counters: PerfCounters,
              max_cycles: Optional[int], tracer) -> int:
    """Simulate one kernel call and return its cycle count.

    Alternates between committed streaming windows and verbatim fast-engine
    visited cycles for everything the planner cannot prove.  A window needs
    every busy core accounted for: either it streams a plan, or its cached
    event hint proves it cannot issue before the window ends (a pure staller,
    charged exactly the stalls the reference loop would record).  Tracing
    restricts streaming to single-core calls so records interleave in the
    reference's (cycle, core) order.
    """
    busy = [core for core in active_cores if core.busy]
    for core in busy:
        core._adopt()
    hints = [-1.0] * len(busy)
    cycle = 0
    issue_cycles = stall_cycles = active_cycles = 0
    while busy:
        if max_cycles is not None and cycle > max_cycles:
            raise SimulationError(
                f"kernel call exceeded max_cycles={max_cycles} "
                f"({len(busy)} cores still busy)"
            )
        # ---- streaming attempt -------------------------------------------
        if len(busy) == 1:
            # Single-core calls skip the multi-core window bookkeeping: the
            # sole core either streams its plan or falls through verbatim.
            core = busy[0]
            if hints[0] <= cycle and core._stream_enabled and (
                    core._lazy or not core._div_gate or core._probe
                    or core._rr_next == core._probe_rr):
                core._probe = False
                plan = _plan_core(core, cycle)
                if plan is not None:
                    rounds = plan.rounds
                    window = plan.window(rounds)
                    if max_cycles is None or cycle + window - 1 <= max_cycles:
                        _commit_window((plan,), cycle, rounds, tracer)
                        if plan.ragged or plan.gaps:
                            n0 = plan.n
                            issue_cycles += n0
                            active_cycles += n0
                            stall_cycles += plan.gaps
                        else:
                            issue_cycles += window
                            active_cycles += window
                        cycle += window
                        if type(plan) is _HaltPlan:
                            busy = []
                            hints = []
                        else:
                            hints[0] = -1.0
                        continue
        elif tracer is None:
            plans = []
            planned = []
            idle = 0
            min_idle_hint = NEVER
            for i, core in enumerate(busy):
                if hints[i] > cycle:
                    # Cannot issue now; may still be idle for the window.
                    idle += 1
                    if hints[i] < min_idle_hint:
                        min_idle_hint = hints[i]
                    continue
                if core._stream_enabled and (
                        core._lazy or not core._div_gate or core._probe
                        or core._rr_next == core._probe_rr):
                    core._probe = False
                    plan = _plan_core(core, cycle)
                else:
                    plan = None
                if plan is None or (plans and plan.n != plans[0].n):
                    plans = None
                    break
                plans.append(plan)
                planned.append(i)
            window = 0
            if plans:
                if len(plans) == 1:
                    plan = plans[0]
                    rounds = plan.rounds
                    window = plan.window(rounds)
                    gaps = plan.gaps
                else:
                    # Multi-core windows stay cycle-aligned: every streaming
                    # core must issue on every cycle of the window.
                    rounds = min(plan.rounds for plan in plans)
                    window = 0 if any(plan.ragged for plan in plans) \
                        else rounds * plans[0].n
                    gaps = 0
                if window and idle and min_idle_hint < cycle + window:
                    # Shrink uniform windows until the stalled cores provably
                    # sleep through them; ragged windows cannot shrink.
                    if gaps == 0 and not plans[0].ragged:
                        n0 = plans[0].n
                        fit = int((min_idle_hint - cycle) // n0)
                        rounds = min(rounds, fit)
                        window = rounds * n0 if rounds >= 1 else 0
                    else:
                        window = 0
                if window and max_cycles is not None \
                        and cycle + window - 1 > max_cycles:
                    window = 0            # let the fallback raise on schedule
            if window:
                _commit_window(plans, cycle, rounds, tracer)
                if gaps or plans[0].ragged:
                    # Ragged single plan: the reference visits each issue
                    # cycle (the streamer issues, everyone else stalls) plus
                    # the cycle right after each multi-cycle FU hold (nobody
                    # issues, every busy core stalls) before event-jumping.
                    n0 = plans[0].n
                    issue_cycles += n0
                    active_cycles += n0
                    stall_cycles += gaps * len(busy) + (len(busy) - 1) * n0
                else:
                    # Uniform window: every cycle is visited, every streaming
                    # core issues on each of them, idle cores stall through.
                    issue_cycles += window * len(plans)
                    active_cycles += window
                    stall_cycles += window * idle
                cycle += window
                for i in planned:
                    hints[i] = -1.0
                if any(type(plan) is _HaltPlan for plan in plans):
                    pairs = [(core, hints[i]) for i, core in enumerate(busy)
                             if core.busy]
                    busy = [core for core, _ in pairs]
                    hints = [hint for _, hint in pairs]
                continue
        # ---- one visited cycle: the fast engine's loop body, verbatim ----
        issued = 0
        drained = False
        next_hint = NEVER
        for i, core in enumerate(busy):
            hint = hints[i]
            if hint > cycle:
                if hint < next_hint:
                    next_hint = hint
                continue
            if core._lazy:
                _sync_warps(core)
            warps = core.warps
            num_warps = len(warps)
            if core._is_rr:
                orders = core._rr_orders
                if orders is None:
                    n = core._rr_n
                    orders = core._rr_orders = [
                        [index for offset in range(n)
                         if (index := (start + offset) % n) < num_warps]
                        for start in range(n)
                    ]
                order = orders[core._rr_next]
            else:
                order = [w for w in core._scheduler.priority_order()
                         if w < num_warps]
            decode = core._decode
            fu_busy = core._fu_busy
            earliest = NEVER
            issued_here = False
            for index in order:
                warp = warps[index]
                if warp.halted or warp.at_barrier:
                    continue
                d = warp._d_cache
                if d is None:
                    pc = warp.pc
                    try:
                        d = decode[pc].tup
                    except IndexError:
                        raise SimulationError(
                            f"core {core.core_id} warp {warp.warp_id}: "
                            f"PC {pc} ran off the program"
                        ) from None
                    (run, dst, check_regs, default_latency, interval,
                     unit_index, fu_check, is_mem) = d
                    own = warp.next_issue_cycle
                    reg_ready = warp.reg_ready
                    for reg in check_regs:
                        pending = reg_ready[reg]
                        if pending > own:
                            own = pending
                else:
                    own = warp._own_ready
                    pc = warp.pc
                    (run, dst, check_regs, default_latency, interval,
                     unit_index, fu_check, is_mem) = d
                if fu_check:
                    fu_free = fu_busy[unit_index]
                    ready = own if own >= fu_free else fu_free
                else:
                    ready = own
                if ready <= cycle:
                    core._pc_issues[pc] += 1
                    core._pc_lanes[pc] += warp.active_mask.bit_count()
                    if tracer is not None:
                        instr = decode[pc].instr
                        tracer.record(cycle=cycle, core=core.core_id,
                                      warp=warp.warp_id, pc=pc,
                                      opcode=instr.opcode,
                                      mask=warp.active_mask,
                                      section=instr.section)
                    latency = run(core, warp, cycle)
                    if latency is None:
                        latency = default_latency
                    if dst is not None:
                        warp.reg_ready[dst] = cycle + latency
                    fu_hold = interval
                    if is_mem and core._last_line_count > fu_hold:
                        fu_hold = core._last_line_count
                    if fu_hold > 1:
                        fu_busy[unit_index] = cycle + fu_hold
                    warp.next_issue_cycle = cycle + 1
                    warp._d_cache = None
                    if core._is_rr:
                        core._rr_next = (index + 1) % core._rr_n
                    else:
                        core._scheduler.issued(index)
                    issued_here = True
                    break
                warp._d_cache = d
                warp._own_ready = own
                if ready < earliest:
                    earliest = ready
            if issued_here:
                issued += 1
                hints[i] = -1.0
                if core._drain_check:
                    core._drain_check = False
                    if core._stream_enabled:
                        for w in warps:
                            if w.halted:
                                # A halted warp's stack rows go stale; the
                                # remaining warps finish on the exact path.
                                core._stream_enabled = False
                                break
                    if not core.busy:
                        drained = True
            else:
                hints[i] = earliest
                if earliest < next_hint:
                    next_hint = earliest
        stall_cycles += len(busy) - issued
        if issued:
            issue_cycles += issued
            active_cycles += 1
            cycle += 1
            if drained:
                pairs = [(core, hints[i]) for i, core in enumerate(busy)
                         if core.busy]
                busy = [core for core, _ in pairs]
                hints = [hint for _, hint in pairs]
        else:
            if next_hint is NEVER or next_hint <= cycle:
                raise SimulationError(
                    f"simulation deadlock at cycle {cycle}: no core can "
                    f"make progress"
                )
            cycle = int(next_hint)
            for core in busy:
                # Stalls compress warp spacing; divergent cores may have
                # reconverged, so let everyone re-attempt a plan once.
                core._probe = True
    counters.issue_cycles += issue_cycles
    counters.stall_cycles += stall_cycles
    counters.active_cycles += active_cycles
    for core in active_cores:
        core.flush_instruction_counters()
    return cycle


def _commit_window(plans, cycle: int, rounds: int, tracer) -> None:
    """Commit one streaming window: ``rounds`` rounds on every planned core.

    Non-memory plans commute (they touch only their own core's state plus
    commutative counters) and commit whole.  Memory plans share the L2/DRAM
    and the backing store, so their walks -- and their data when more than
    one core is storing -- are sequenced in the reference's (cycle, core)
    order.
    """
    mem_plans = [plan for plan in plans if plan.is_mem]
    for plan in plans:
        if not plan.is_mem:
            plan.commit(cycle, rounds, tracer)
    if not mem_plans:
        return
    timing = RECORDER.enabled
    walk_started = _perf_counter() if timing else 0.0
    if len(mem_plans) == 1:
        plan = mem_plans[0]
        plan.data_batched()
        plan.walks(cycle)
    elif any(not plan.is_load for plan in mem_plans):
        for k in range(mem_plans[0].n):
            for plan in mem_plans:
                plan.exec_one(k, cycle)
    else:
        for plan in mem_plans:
            plan.data_batched()
        for k in range(mem_plans[0].n):
            for plan in mem_plans:
                plan.walk_one(k, cycle)
    if timing:
        RECORDER.count("engine.memory.walk_seconds",
                       _perf_counter() - walk_started)
        RECORDER.count("engine.memory.walks", sum(plan.n for plan in mem_plans))
    for plan in mem_plans:
        plan.bookkeep(cycle, tracer)
