"""Trace compiler for the ``batch`` engine.

:func:`compile_program` runs once per (program, config) and turns the fast
engine's per-PC decode into a *batch program*: every PC is classified by how
it can execute across **all resident warps of a core at once**, and maximal
straight-line runs of element-wise PCs are segmented into *traces* whose
cross-warp hazard structure is solved in closed form at compile time.

Classification (:attr:`BatchOp.kind`):

``"ewise"``
    Pure register-to-register lane arithmetic (ALU/FPU binaries, unaries,
    FMA, LI, MOV) whose numpy implementation is elementwise and
    exception-free.  One such PC executes for a whole round of warps as a
    single 2-D ufunc over the core's stacked register file -- with an
    optional boolean mask for divergent rounds (compute the full slab, then
    ``np.copyto(..., where=mask)`` only the active lanes).
``"load"`` / ``"store"``
    Memory ops with initiation interval 1.  A round whose every warp
    coalesces to a *single* in-bounds cache line executes as one 2-D
    gather/scatter per core plus one hierarchy walk per warp; anything else
    falls back to the fast engine's exact per-warp handler.
``"scalar"``
    Correct but not batchable across lanes/warps (control flow, the
    Python-int ops, NOP, unknown-CSR reads).  A uniform round still
    *streams*: the fast handlers run per warp in slot order without
    re-running the scheduler scan.  Known-CSR reads are *promoted* to ewise
    moves from pseudo-register slab rows staged at adopt time
    (:func:`_promote_csrr`), since CSR values are launch constants.
``"sfu"``
    Ops with an initiation interval > 1 (SFU arithmetic, overridden
    timings).  A uniform round streams with issue spacing equal to the
    interval: the functional-unit hold itself guarantees no other warp can
    issue in between, so slot ``k`` issues at ``cycle + k * interval``.
``"stop"``
    Never streamed: barrier/halt/TMC (they park or kill warps) and any
    interval-1 op whose functional unit another instruction can occupy.
    The run loop falls back to the exact fast-engine path at these PCs.

Trace feasibility is closed-form: when round ``j`` of a trace reads a
register written by round ``i`` with latency ``L``, the write completes
``L`` cycles after its issue and the read issues ``(j - i) * n`` cycles
later (``n`` = warps per round), so the hazard clears for every warp iff
``(j - i) * n >= L``.  :attr:`TraceInfo.min_warps` stores the resulting
per-prefix floor; registers read before any trace round writes them become
entry guards checked against the live scoreboard at run time
(:attr:`TraceInfo.livein_regs` / :attr:`TraceInfo.livein_rounds`).

Equivalence with the reference engine is enforced by
``tests/test_engine_differential.py`` and ``tests/test_engine_fuzz.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import NUM_ARG_SLOTS, Csr
from repro.sim.config import ArchConfig
from repro.sim.fastcore import (
    _BINARY_NP,
    _Decoded,
    _UNARY_NP,
    _UNIFORM_CSR_ATTRS,
    _line_math,
    decode_program,
)

#: Opcodes that stop streaming outright: they park/halt warps or drain the
#: core, so every round guard around them would be unsound.
_STOP_OPS = (Opcode.BAR, Opcode.TMC, Opcode.HALT)

#: Element-wise opcodes whose full-slab evaluation is exception-free on any
#: float64 input (stale values in masked-off lanes included), making the
#: compute-then-masked-copy strategy exact.  FSQRT/FEXP/FLOG/DIV/FDIV/REM are
#: SFU ops (initiation interval > 1) and never reach this table.
_EWISE_BINARY = dict(_BINARY_NP)
_EWISE_UNARY = {op: fn for op, fn in _UNARY_NP.items() if op is not Opcode.FSQRT}


class BatchOp:
    """One PC of the batch program (see module docstring for the kinds)."""

    __slots__ = ("kind", "run2d", "instr", "run", "dst", "check_regs",
                 "latency", "interval", "unit_index", "addr_reg", "value_reg",
                 "offset", "to_lines", "control")

    def __init__(self, kind: str, decoded: _Decoded):
        self.kind = kind
        self.instr = decoded.instr
        self.run = decoded.run                  # the fast per-warp handler
        self.dst = decoded.dst
        self.check_regs = decoded.check_regs
        self.latency = decoded.default_latency
        self.interval = decoded.initiation_interval
        self.unit_index = decoded.unit_index
        self.run2d: Optional[Callable] = None
        self.addr_reg = self.value_reg = self.offset = -1
        self.to_lines: Optional[Callable] = None
        self.control: Optional[str] = None      # batched control-op tag


class TraceInfo:
    """Streaming constraints for the straight-line ewise run starting at a PC.

    One instance exists per *ewise* PC, describing the suffix of its run: a
    round that enters mid-block (after a reconvergence or a jump) streams the
    remainder of the block under exactly the same closed-form guarantees.
    """

    __slots__ = ("length", "ops", "min_warps", "livein_regs", "livein_rounds",
                 "write_rounds", "write_dsts", "write_latencies")

    def __init__(self, ops: List[BatchOp]):
        self.length = len(ops)
        self.ops = ops
        min_warps = [1] * self.length
        last_writer: Dict[int, Tuple[int, int]] = {}
        livein: Dict[int, int] = {}
        writes: List[Tuple[int, int, int]] = []
        for j, op in enumerate(ops):
            for reg in op.check_regs:
                writer = last_writer.get(reg)
                if writer is None:
                    livein.setdefault(reg, j)
                else:
                    i, lat = writer
                    need = -(-lat // (j - i))  # ceil(lat / gap)
                    if need > min_warps[j]:
                        min_warps[j] = need
            if op.dst is not None:
                last_writer[op.dst] = (j, op.latency)
                writes.append((j, op.dst, op.latency))
        for j in range(1, self.length):   # feasibility is a prefix property
            if min_warps[j] < min_warps[j - 1]:
                min_warps[j] = min_warps[j - 1]
        self.min_warps = min_warps
        pairs = sorted(livein.items(), key=lambda item: item[1])
        self.livein_regs = np.array([reg for reg, _ in pairs], dtype=np.intp)
        self.livein_rounds = np.array([rnd for _, rnd in pairs], dtype=np.int64)
        self.write_rounds = [j for j, _, _ in writes]
        self.write_dsts = [dst for _, dst, _ in writes]
        self.write_latencies = [lat for _, _, lat in writes]


class CompiledProgram:
    """Everything the batch run loop needs about one (program, config)."""

    __slots__ = ("program", "decoded", "ops", "traces", "csr_slots",
                 "num_slabs")

    def __init__(self, program: Program, decoded: List[_Decoded],
                 ops: List[BatchOp], traces: Dict[int, TraceInfo],
                 csr_slots: Dict[int, int]):
        self.program = program
        self.decoded = decoded
        self.ops = ops
        self.traces = traces
        #: CSR number -> pseudo-register slab row (appended after the real
        #: registers); filled per warp at adopt time, read-only afterwards.
        self.csr_slots = csr_slots
        self.num_slabs = program.num_registers + len(csr_slots)


# ----------------------------------------------------------------------
# 2-D handlers: one numpy call over the (warps, lanes) register slab.
# ``sel`` is None when every warp's mask is full, else a bool (warps, lanes)
# mask.  Masked rounds compute the whole slab into ``scratch`` and copy back
# only the active lanes -- bit-identical because every table entry is an
# elementwise, exception-free map (subsetting commutes with the ufunc).
# ----------------------------------------------------------------------
def _b_binary(instr: Instruction, np_fn: Callable) -> Callable:
    s0, s1 = instr.srcs
    dst = instr.dst
    if isinstance(np_fn, np.ufunc):
        def run2d(slabs, scratch, sel):
            if sel is None:
                np_fn(slabs[s0], slabs[s1], out=slabs[dst])
            else:
                np_fn(slabs[s0], slabs[s1], out=scratch)
                np.copyto(slabs[dst], scratch, where=sel)
        return run2d

    def run2d(slabs, scratch, sel):
        if sel is None:
            slabs[dst][...] = np_fn(slabs[s0], slabs[s1])
        else:
            np.copyto(slabs[dst], np_fn(slabs[s0], slabs[s1]), where=sel)
    return run2d


def _b_unary(instr: Instruction, np_fn: Callable) -> Callable:
    (s0,) = instr.srcs
    dst = instr.dst
    if isinstance(np_fn, np.ufunc):
        def run2d(slabs, scratch, sel):
            if sel is None:
                np_fn(slabs[s0], out=slabs[dst])
            else:
                np_fn(slabs[s0], out=scratch)
                np.copyto(slabs[dst], scratch, where=sel)
        return run2d

    def run2d(slabs, scratch, sel):
        if sel is None:
            slabs[dst][...] = np_fn(slabs[s0])
        else:
            np.copyto(slabs[dst], np_fn(slabs[s0]), where=sel)
    return run2d


def _b_fma(instr: Instruction) -> Callable:
    s0, s1, s2 = instr.srcs
    dst = instr.dst

    def run2d(slabs, scratch, sel):
        np.multiply(slabs[s0], slabs[s1], out=scratch)
        if sel is None:
            np.add(scratch, slabs[s2], out=slabs[dst])
        else:
            np.add(scratch, slabs[s2], out=scratch)
            np.copyto(slabs[dst], scratch, where=sel)
    return run2d


def _b_li(instr: Instruction) -> Callable:
    value = float(instr.imm)
    dst = instr.dst

    def run2d(slabs, scratch, sel):
        if sel is None:
            slabs[dst].fill(value)
        else:
            np.copyto(slabs[dst], value, where=sel)
    return run2d


def _b_mov(instr: Instruction) -> Callable:
    (src,) = instr.srcs
    dst = instr.dst

    def run2d(slabs, scratch, sel):
        if sel is None:
            slabs[dst][...] = slabs[src]
        else:
            np.copyto(slabs[dst], slabs[src], where=sel)
    return run2d


def _b_csrr(instr: Instruction, slot: int) -> Callable:
    """CSRR as a move from the CSR pseudo-register slab row ``slot``."""
    dst = instr.dst

    def run2d(slabs, scratch, sel):
        if sel is None:
            slabs[dst][...] = slabs[slot]
        else:
            np.copyto(slabs[dst], slabs[slot], where=sel)
    return run2d


def _csr_promotable(csr_number: int) -> bool:
    """CSR numbers whose per-lane values are fixed for the whole kernel call
    (no opcode writes CSRs) and readable without raising -- an unknown number
    must keep the scalar path so it raises at execution, not at adopt."""
    return (csr_number == Csr.THREAD_ID
            or csr_number in (Csr.WORKGROUP_ID, Csr.LOCAL_COUNT)
            or csr_number in _UNIFORM_CSR_ATTRS
            or Csr.ARG_BASE <= csr_number < Csr.ARG_BASE + NUM_ARG_SLOTS)


def _promote_csrr(ops: List[BatchOp], num_regs: int) -> Dict[int, int]:
    """Turn known-CSR reads into ewise moves from pseudo-register rows.

    CSR values never change during a call, so a CSRR is a register move once
    the values are staged into the slab stack -- which lets CSRR-heavy
    prologues join traces instead of running one fast handler per warp.
    Returns the CSR number -> slab row map the adopt step must fill (rows are
    appended after the ``num_regs`` real registers).
    """
    csr_slots: Dict[int, int] = {}
    for op in ops:
        if op.kind != "scalar" or op.instr.opcode is not Opcode.CSRR:
            continue
        csr_number = int(op.instr.imm)
        if not _csr_promotable(csr_number):
            continue
        slot = csr_slots.setdefault(csr_number, len(csr_slots))
        op.kind = "ewise"
        op.run2d = _b_csrr(op.instr, num_regs + slot)
    return csr_slots


def _ewise_handler(instr: Instruction) -> Optional[Callable]:
    opcode = instr.opcode
    if opcode in _EWISE_BINARY:
        return _b_binary(instr, _EWISE_BINARY[opcode])
    if opcode in _EWISE_UNARY:
        return _b_unary(instr, _EWISE_UNARY[opcode])
    if opcode is Opcode.FMA:
        return _b_fma(instr)
    if opcode is Opcode.LI:
        return _b_li(instr)
    if opcode is Opcode.MOV:
        return _b_mov(instr)
    return None


#: Control opcodes with a specialised batched round commit in
#: :mod:`repro.sim.batchcore` -- the reference handlers' per-lane predicate
#: loops become one slab compare + bit-pack for the whole round.
_CONTROL_TAGS = {
    Opcode.SPLIT: "split",
    Opcode.JOIN: "join",
    Opcode.LOOP_BEGIN: "loop_begin",
    Opcode.LOOP_END: "loop_end",
    Opcode.JMP: "jmp",
}


# ----------------------------------------------------------------------
def _classify(decoded: _Decoded, config: ArchConfig) -> BatchOp:
    instr = decoded.instr
    opcode = instr.opcode
    if opcode in _STOP_OPS:
        return BatchOp("stop", decoded)
    if decoded.is_mem:
        if decoded.initiation_interval != 1:
            return BatchOp("stop", decoded)
        op = BatchOp("load" if opcode is Opcode.LOAD else "store", decoded)
        if opcode is Opcode.LOAD:
            (op.addr_reg,) = instr.srcs
        else:
            op.value_reg, op.addr_reg = instr.srcs
        op.offset = int(instr.imm or 0)
        op.to_lines = _line_math(config.l1_line_words)
        return op
    if decoded.initiation_interval > 1:
        return BatchOp("sfu", decoded)
    if decoded.fu_check:
        # Interval-1 op on a unit another instruction can mark busy: the
        # round guard never re-reads the FU table mid-round, so these must
        # take the exact path.
        return BatchOp("stop", decoded)
    run2d = _ewise_handler(instr)
    if run2d is not None:
        op = BatchOp("ewise", decoded)
        op.run2d = run2d
        return op
    op = BatchOp("scalar", decoded)
    op.control = _CONTROL_TAGS.get(opcode)
    return op


def compile_program(program: Program, config: ArchConfig,
                    decoded: Optional[List[_Decoded]] = None) -> CompiledProgram:
    """Compile ``program`` for ``config`` (once per launch, cached by the Gpu)."""
    if decoded is None:
        decoded = decode_program(program, config)
    ops = [_classify(d, config) for d in decoded]
    csr_slots = _promote_csrr(ops, program.num_registers)
    traces: Dict[int, TraceInfo] = {}
    pc = 0
    plen = len(ops)
    while pc < plen:
        if ops[pc].kind != "ewise":
            pc += 1
            continue
        end = pc
        while end < plen and ops[end].kind == "ewise":
            end += 1
        for start in range(pc, end):  # one suffix trace per entry PC
            traces[start] = TraceInfo(ops[start:end])
        pc = end
    return CompiledProgram(program, decoded, ops, traces, csr_slots)
