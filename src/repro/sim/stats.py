"""Performance counters.

:class:`PerfCounters` collects everything the simulator measures during one or
more kernel calls.  Counters are plain integers/floats so they can be merged
(added) across calls of a launch, across cores and across launches, serialised
to dictionaries for reports, and compared in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class PerfCounters:
    """Aggregated counters for one or more simulated kernel calls."""

    # headline numbers
    cycles: int = 0                  # total cycles including launch overhead
    active_cycles: int = 0           # cycles where at least one core issued
    launch_overhead_cycles: int = 0  # cycles charged to kernel-call/warp setup
    kernel_calls: int = 0
    warps_launched: int = 0

    # instruction mix (warp granularity and lane granularity)
    warp_instructions: int = 0
    lane_instructions: int = 0
    alu_instructions: int = 0
    fpu_instructions: int = 0
    sfu_instructions: int = 0
    memory_instructions: int = 0
    control_instructions: int = 0

    # issue behaviour
    issue_cycles: int = 0            # core-cycles in which an instruction issued
    stall_cycles: int = 0            # core-cycles in which a busy core could not issue
    idle_core_cycles: int = 0        # core-cycles in which a core had no runnable warp

    # memory system
    loads: int = 0
    stores: int = 0
    load_lines: int = 0              # coalesced cache-line requests from loads
    store_lines: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    dram_lines: int = 0
    dram_queue_cycles: int = 0       # total cycles requests waited for DRAM bandwidth

    # divergence / synchronisation
    divergent_branches: int = 0
    barriers: int = 0

    # ------------------------------------------------------------------
    def merge(self, other: "PerfCounters") -> "PerfCounters":
        """Add ``other``'s counters into this instance (in place) and return self."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def copy(self) -> "PerfCounters":
        """Return an independent copy."""
        clone = PerfCounters()
        for f in fields(self):
            setattr(clone, f.name, getattr(self, f.name))
        return clone

    def as_dict(self) -> Dict[str, float]:
        """Serialise to a plain dictionary (for JSON reports)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "PerfCounters":
        """Inverse of :meth:`as_dict`; unknown keys are ignored."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    # ------------------------------------------------------------------ derived metrics
    @property
    def ipc(self) -> float:
        """Warp instructions issued per cycle (over all cores)."""
        return self.warp_instructions / self.cycles if self.cycles else 0.0

    @property
    def lanes_per_instruction(self) -> float:
        """Average number of active lanes per issued instruction (SIMT efficiency)."""
        if not self.warp_instructions:
            return 0.0
        return self.lane_instructions / self.warp_instructions

    @property
    def l1_hit_rate(self) -> float:
        """L1 data-cache hit rate over all line requests."""
        total = self.l1_hits + self.l1_misses
        return self.l1_hits / total if total else 0.0

    @property
    def l2_hit_rate(self) -> float:
        """Shared L2 hit rate over requests that missed in L1."""
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0

    @property
    def memory_intensity(self) -> float:
        """Fraction of issued instructions that access memory."""
        if not self.warp_instructions:
            return 0.0
        return self.memory_instructions / self.warp_instructions

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"PerfCounters(cycles={self.cycles}, calls={self.kernel_calls}, "
            f"warp_instr={self.warp_instructions}, ipc={self.ipc:.3f}, "
            f"l1_hit={self.l1_hit_rate:.2%})"
        )
