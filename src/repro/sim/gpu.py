"""Top-level device model.

A :class:`Gpu` owns the backing memory, the shared memory hierarchy and the
per-call core instances.  :meth:`Gpu.run_call` executes *one kernel call*: the
dispatcher has already decided which warps run on which cores and with which
CSR contents (see :mod:`repro.runtime.dispatcher`); the GPU simply simulates
all cores cycle by cycle until every warp has halted.

The main loop is event-accelerated: whenever no core can issue in a cycle the
clock jumps directly to the earliest cycle at which any core may issue again
(pending register writebacks, functional-unit availability), so configurations
with long memory stalls or mostly-idle machines simulate quickly without
changing the cycle arithmetic.

Three interchangeable engines drive the loop (see :mod:`repro.sim.engine`):
the ``reference`` engine re-scans every busy core every cycle, the ``fast``
engine additionally caches each stalled core's ``next_event_hint`` and runs
lane execution vectorised (:mod:`repro.sim.fastcore`), and the ``batch``
engine compiles each (program, config) once and streams whole rounds of warps
per core as single 2-D numpy operations (:mod:`repro.sim.batchcore`).  All
three produce bit-identical cycles, counters and memory contents -- the
differential test suite holds them to that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.isa.program import Program
from repro.isa.registers import CsrFile
from repro.sim.config import ArchConfig
from repro.sim.core import NEVER, SimtCore, SimulationError
from repro.sim.engine import resolve_engine
from repro.sim.memory.hierarchy import MemoryHierarchy
from repro.sim.memory.mainmem import MainMemory
from repro.sim.stats import PerfCounters
from repro.telemetry.recorder import RECORDER

#: Default device memory size (words).  Large enough for every paper workload
#: at full scale; the runtime's allocator raises a clear error if exceeded.
DEFAULT_MEMORY_WORDS = 1 << 22


@dataclass(frozen=True)
class WarpLaunch:
    """One warp's placement and initial CSR state for a kernel call."""

    core_id: int
    warp_id: int
    csr: CsrFile
    active_lanes: int


@dataclass
class CallResult:
    """Result of simulating one kernel call."""

    cycles: int
    counters: PerfCounters = field(default_factory=PerfCounters)


class Gpu:
    """A simulated Vortex-like GPGPU device."""

    def __init__(self, config: ArchConfig, memory_words: int = DEFAULT_MEMORY_WORDS,
                 tracer=None, engine: Optional[str] = None):
        self.config = config
        self.memory = MainMemory(memory_words)
        self.hierarchy = MemoryHierarchy(config)
        self.tracer = tracer
        self.engine = resolve_engine(engine)
        # program id -> (program, decoded-or-compiled) kept by the fast and
        # batch engines so a program is decoded (and, for batch, compiled)
        # once per launch instead of once per core per call (the program
        # reference pins the id against reuse).
        self._decode_cache: Dict[int, tuple] = {}

    # ------------------------------------------------------------------
    def reset_memory_system(self) -> None:
        """Invalidate caches and DRAM queue state (called between launches)."""
        self.hierarchy.invalidate()

    def run_call(self, program: Program, launches: Sequence[WarpLaunch],
                 max_cycles: Optional[int] = None) -> CallResult:
        """Simulate one kernel call to completion and return its cycle count.

        ``launches`` describes every warp taking part in the call.  Cores that
        receive no warp are idle and cost nothing.  ``max_cycles`` guards
        against runaway kernels (raises :class:`SimulationError` when hit).
        """
        if not launches:
            return CallResult(cycles=0)
        counters = PerfCounters()
        # Each call starts its own DRAM queue (time restarts at zero per call);
        # cache contents persist across the calls of one launch on purpose.
        self.hierarchy.dram.reset()
        # Phase timers are pure observers -- wall-clock reads behind a single
        # enabled check, never touching the cycle arithmetic, so both engines
        # stay bit-identical with telemetry on or off.
        if not RECORDER.enabled:
            cores = self._build_cores(program, launches, counters)
            active_cores: List[SimtCore] = list(cores.values())
            if self.engine == "fast":
                cycle = self._run_fast(active_cores, counters, max_cycles)
            elif self.engine == "batch":
                cycle = self._run_batch(active_cores, counters, max_cycles)
            else:
                cycle = self._run_reference(active_cores, counters, max_cycles)
            counters.cycles = cycle
            counters.warps_launched = len(launches)
            self._fold_memory_statistics(counters)
            return CallResult(cycles=cycle, counters=counters)

        t0 = time.perf_counter()
        cores = self._build_cores(program, launches, counters)
        active_cores = list(cores.values())
        t1 = time.perf_counter()
        if self.engine == "fast":
            cycle = self._run_fast(active_cores, counters, max_cycles)
        elif self.engine == "batch":
            cycle = self._run_batch(active_cores, counters, max_cycles)
        else:
            cycle = self._run_reference(active_cores, counters, max_cycles)
        t2 = time.perf_counter()
        counters.cycles = cycle
        counters.warps_launched = len(launches)
        self._fold_memory_statistics(counters)
        t3 = time.perf_counter()
        prefix = f"engine.{self.engine}"
        RECORDER.observe(f"{prefix}.build_cores_seconds", t1 - t0)
        RECORDER.observe(f"{prefix}.issue_loop_seconds", t2 - t1)
        RECORDER.observe(f"{prefix}.fold_stats_seconds", t3 - t2)
        RECORDER.count(f"{prefix}.calls")
        RECORDER.count(f"{prefix}.cycles", cycle)
        return CallResult(cycles=cycle, counters=counters)

    def _run_reference(self, active_cores: List[SimtCore], counters: PerfCounters,
                       max_cycles: Optional[int]) -> int:
        """The straight-line reference loop: scan every busy core every cycle."""
        cycle = 0
        while True:
            busy_cores = [core for core in active_cores if core.busy]
            if not busy_cores:
                break
            if max_cycles is not None and cycle > max_cycles:
                raise SimulationError(
                    f"kernel call exceeded max_cycles={max_cycles} "
                    f"({len(busy_cores)} cores still busy)"
                )
            issued_any = False
            next_hint = NEVER
            for core in busy_cores:
                if core.try_issue(cycle):
                    issued_any = True
                    counters.issue_cycles += 1
                else:
                    counters.stall_cycles += 1
                    if core.next_event_hint < next_hint:
                        next_hint = core.next_event_hint
            if issued_any:
                counters.active_cycles += 1
                cycle += 1
            else:
                if next_hint is NEVER or next_hint <= cycle:
                    # No progress is possible and no future event is pending:
                    # this indicates a deadlock (e.g. a barrier never released).
                    raise SimulationError(
                        f"simulation deadlock at cycle {cycle}: no core can make progress"
                    )
                cycle = int(next_hint)
        return cycle

    def _run_fast(self, active_cores: List[SimtCore], counters: PerfCounters,
                  max_cycles: Optional[int]) -> int:
        """Event-skipping loop used by the ``fast`` engine.

        Identical cycle arithmetic to :meth:`_run_reference` -- same visited
        cycles, same issue order, same stall accounting -- but a core whose
        cached ``next_event_hint`` lies in the future is charged its stall
        without being re-scanned, and the per-core issue attempt is inlined
        into the loop.  Lives in :func:`repro.sim.fastcore.run_fast` with the
        rest of the fast engine.
        """
        from repro.sim.fastcore import run_fast

        return run_fast(active_cores, counters, max_cycles, self.tracer)

    def _run_batch(self, active_cores: List[SimtCore], counters: PerfCounters,
                   max_cycles: Optional[int]) -> int:
        """Streaming loop used by the ``batch`` engine.

        Commits whole rounds of warps per core where a vectorized guard proves
        the exact reference schedule, and falls back to the fast engine's
        visited-cycle body everywhere else.  Lives in
        :func:`repro.sim.batchcore.run_batch`.
        """
        from repro.sim.batchcore import run_batch

        return run_batch(active_cores, counters, max_cycles, self.tracer)

    # ------------------------------------------------------------------ helpers
    def _build_cores(self, program: Program, launches: Sequence[WarpLaunch],
                     counters: PerfCounters) -> Dict[int, SimtCore]:
        from repro.sim.warp import FastWarp, Warp  # local import to avoid a cycle in docs builds

        decoded = None
        compiled = None
        if self.engine == "fast":
            from repro.sim.fastcore import FastSimtCore, decode_program
            core_cls, warp_cls = FastSimtCore, FastWarp
            cached = self._decode_cache.get(id(program))
            if cached is None or cached[0] is not program:
                if len(self._decode_cache) > 8:
                    self._decode_cache.clear()
                cached = (program, decode_program(program, self.config))
                self._decode_cache[id(program)] = cached
            decoded = cached[1]
        elif self.engine == "batch":
            from repro.sim.batchcore import BatchSimtCore
            from repro.sim.compile import compile_program
            core_cls, warp_cls = BatchSimtCore, FastWarp
            cached = self._decode_cache.get(id(program))
            if cached is None or cached[0] is not program:
                if len(self._decode_cache) > 8:
                    self._decode_cache.clear()
                if RECORDER.enabled:
                    t0 = time.perf_counter()
                    cached = (program, compile_program(program, self.config))
                    RECORDER.observe("engine.batch.compile_seconds",
                                     time.perf_counter() - t0)
                    RECORDER.count("engine.batch.compiles")
                else:
                    cached = (program, compile_program(program, self.config))
                self._decode_cache[id(program)] = cached
            compiled = cached[1]
        else:
            core_cls, warp_cls = SimtCore, Warp

        cores: Dict[int, SimtCore] = {}
        for launch in launches:
            if not (0 <= launch.core_id < self.config.cores):
                raise SimulationError(
                    f"launch targets core {launch.core_id} but the device has "
                    f"{self.config.cores} cores"
                )
            if not (0 <= launch.warp_id < self.config.warps_per_core):
                raise SimulationError(
                    f"launch targets warp {launch.warp_id} but cores have "
                    f"{self.config.warps_per_core} warps"
                )
            core = cores.get(launch.core_id)
            if core is None:
                if compiled is not None:
                    core = core_cls(launch.core_id, self.config, program,
                                    self.hierarchy, self.memory, counters,
                                    tracer=self.tracer, compiled=compiled)
                elif decoded is not None:
                    core = core_cls(launch.core_id, self.config, program,
                                    self.hierarchy, self.memory, counters,
                                    tracer=self.tracer, decoded=decoded)
                else:
                    core = core_cls(launch.core_id, self.config, program,
                                    self.hierarchy, self.memory, counters,
                                    tracer=self.tracer)
                cores[launch.core_id] = core
            warp = warp_cls(
                warp_id=launch.warp_id,
                lane_count=self.config.threads_per_warp,
                num_registers=program.num_registers,
                csr=launch.csr,
                active_lanes=launch.active_lanes,
            )
            core.add_warp(warp)
        return cores

    def _fold_memory_statistics(self, counters: PerfCounters) -> None:
        """Pick up cache/DRAM statistics accumulated since the last snapshot."""
        stats = self.hierarchy.statistics()
        counters.l1_hits = stats["l1_hits"]
        counters.l1_misses = stats["l1_misses"]
        counters.l2_hits = stats["l2_hits"]
        counters.l2_misses = stats["l2_misses"]
        # dram_lines / queue cycles are already folded in per access by the core;
        # keep the hierarchy's view as the authoritative one for lines.
        counters.dram_lines = stats["dram_lines"]
        counters.dram_queue_cycles = stats["dram_queue_cycles"]
        # Statistics are cumulative inside the hierarchy; reset so the next call
        # of the same launch reports only its own accesses.
        for cache in self.hierarchy.l1:
            cache.reset_statistics()
        self.hierarchy.l2.reset_statistics()
        self.hierarchy.dram.lines_transferred = 0
        self.hierarchy.dram.total_queue_cycles = 0
