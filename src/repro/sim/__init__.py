"""Cycle-level model of a Vortex-like SIMT GPGPU.

The simulator plays the role of the Vortex RTL/simX platform in the original
paper: it executes the SIMT programs produced by the kernel DSL on a
configurable grid of ``cores x warps x threads``, models an in-order
single-issue pipeline per core with a warp scheduler, scoreboard, functional
unit latencies, memory coalescing, per-core L1 caches, a shared L2 and a
bandwidth-limited DRAM, and reports cycle counts, performance counters and
(optionally) instruction-issue traces.

Public surface:

* :class:`~repro.sim.config.ArchConfig` -- the micro-architecture parameters
  the paper's technique analyses at runtime.
* :class:`~repro.sim.gpu.Gpu` -- the device model; executes one kernel call.
* :class:`~repro.sim.gpu.WarpLaunch` / :class:`~repro.sim.gpu.CallResult` --
  the launch descriptor and result of one kernel call.
* :class:`~repro.sim.stats.PerfCounters` -- aggregated performance counters.
* :data:`~repro.sim.engine.ENGINES` / :func:`~repro.sim.engine.resolve_engine`
  -- the interchangeable, bit-identical simulation engines
  (``"reference"`` and ``"fast"``).
"""

from repro.sim.config import ArchConfig, ConfigError
from repro.sim.engine import DEFAULT_ENGINE, ENGINES, EngineError, resolve_engine
from repro.sim.gpu import CallResult, Gpu, WarpLaunch
from repro.sim.stats import PerfCounters

__all__ = [
    "ArchConfig",
    "CallResult",
    "ConfigError",
    "DEFAULT_ENGINE",
    "ENGINES",
    "EngineError",
    "Gpu",
    "PerfCounters",
    "WarpLaunch",
    "resolve_engine",
]
