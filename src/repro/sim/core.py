"""SIMT core model: functional execution + cycle-level issue timing.

Each core is an in-order, single-issue machine holding ``warps_per_core``
warps.  Every cycle the warp scheduler (round-robin, oldest-first among ready
warps) issues at most one instruction.  An instruction can issue when

* the warp is runnable (not halted, not parked at a barrier),
* its source and destination registers have no pending writes (scoreboard),
* the functional unit it needs is not busy (only the SFU and LSU have
  initiation intervals greater than one), and
* the warp's minimum issue spacing has elapsed.

Issued instructions execute functionally right away (registers and memory are
updated with real values) and their latency is charged through the scoreboard,
so dependent instructions wait the correct number of cycles.  Memory
instructions are coalesced into cache-line requests and walk the memory
hierarchy to obtain their latency.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional

from repro.isa.instruction import Instruction
from repro.isa.latencies import FunctionalUnit, timing_for
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.program import Program
from repro.sim.config import ArchConfig
from repro.sim.memory.coalescer import coalesce
from repro.sim.memory.hierarchy import MemoryHierarchy
from repro.sim.memory.mainmem import MainMemory
from repro.sim.scheduler import make_scheduler
from repro.sim.stats import PerfCounters
from repro.sim.warp import Warp, popcount
from repro.telemetry.recorder import RECORDER

#: Sentinel returned by :meth:`SimtCore.next_event_hint` when the core is drained.
NEVER = float("inf")

#: Which :class:`PerfCounters` attribute each instruction class increments
#: (``None`` for pseudo-ops, which only count as warp/lane instructions).
#: Shared by the reference core below and the fast engine so the two can
#: never drift apart in how they classify the instruction mix.
CLASS_COUNTERS: Dict[OpClass, Optional[str]] = {
    OpClass.INT_ALU: "alu_instructions",
    OpClass.INT_MUL: "alu_instructions",
    OpClass.FLOAT: "fpu_instructions",
    OpClass.SFU: "sfu_instructions",
    OpClass.MEMORY: "memory_instructions",
    OpClass.CONTROL: "control_instructions",
    OpClass.SIMT: "control_instructions",
    OpClass.PSEUDO: None,
}


class SimulationError(RuntimeError):
    """Raised when a kernel performs an illegal operation (bad PC, div by zero...)."""


class SimtCore:
    """One SIMT core executing a single program on its warps."""

    #: Engine this core class implements (the fast engine overrides it).
    engine_name = "reference"

    def __init__(self, core_id: int, config: ArchConfig, program: Program,
                 hierarchy: MemoryHierarchy, memory: MainMemory,
                 counters: PerfCounters, tracer=None):
        self.core_id = core_id
        self.config = config
        self.program = program
        self.hierarchy = hierarchy
        self.memory = memory
        self.counters = counters
        self.tracer = tracer
        self.warps: List[Warp] = []
        self._scheduler = make_scheduler(config.warp_scheduler, config.warps_per_core)
        self._fu_busy_until: Dict[FunctionalUnit, int] = {unit: 0 for unit in FunctionalUnit}
        self._barrier_waiting = 0
        self._next_event_hint: float = 0
        self._exec_table: Dict[Opcode, Callable] = self._build_exec_table()

    # ------------------------------------------------------------------ setup
    def add_warp(self, warp: Warp) -> None:
        """Attach a warp (created by the launcher) to this core."""
        self.warps.append(warp)

    @property
    def busy(self) -> bool:
        """True while at least one warp has not halted."""
        return any(not w.halted for w in self.warps)

    @property
    def next_event_hint(self) -> float:
        """Earliest cycle at which an issue may become possible (valid after a failed issue)."""
        return self._next_event_hint

    # ------------------------------------------------------------------ issue
    def try_issue(self, cycle: int) -> bool:
        """Attempt to issue one instruction at ``cycle``.

        Returns True on issue.  On failure, :attr:`next_event_hint` is updated
        with the earliest cycle at which retrying can succeed.
        """
        num_warps = len(self.warps)
        if num_warps == 0:
            self._next_event_hint = NEVER
            return False
        earliest = NEVER
        for index in self._scheduler.priority_order():
            if index >= num_warps:
                continue
            warp = self.warps[index]
            if warp.halted or warp.at_barrier:
                continue
            ready_at = self._warp_ready_cycle(warp)
            if ready_at <= cycle:
                self._issue(warp, cycle)
                self._scheduler.issued(index)
                return True
            if ready_at < earliest:
                earliest = ready_at
        self._next_event_hint = earliest
        return False

    def _warp_ready_cycle(self, warp: Warp) -> float:
        """Cycle at which ``warp``'s next instruction could issue."""
        if warp.pc >= len(self.program):
            raise SimulationError(
                f"core {self.core_id} warp {warp.warp_id}: PC {warp.pc} ran off the program"
            )
        instr = self.program[warp.pc]
        ready = warp.next_issue_cycle
        regs = instr.srcs if instr.dst is None else instr.srcs + (instr.dst,)
        reg_ready = warp.registers_ready_cycle(regs)
        if reg_ready > ready:
            ready = reg_ready
        timing = timing_for(instr.opcode, self.config.timing_overrides)
        fu_free = self._fu_busy_until[timing.unit]
        if fu_free > ready:
            ready = fu_free
        return ready

    def _issue(self, warp: Warp, cycle: int) -> None:
        instr = self.program[warp.pc]
        issue_pc = warp.pc
        timing = timing_for(instr.opcode, self.config.timing_overrides)

        active = popcount(warp.active_mask)
        self._count_instruction(instr, active)
        if self.tracer is not None:
            self.tracer.record(cycle=cycle, core=self.core_id, warp=warp.warp_id,
                               pc=issue_pc, opcode=instr.opcode, mask=warp.active_mask,
                               section=instr.section)

        handler = self._exec_table[instr.opcode]
        latency = handler(warp, instr, cycle)
        if latency is None:
            latency = timing.latency if timing.latency is not None else 1

        if instr.dst is not None:
            warp.scoreboard[instr.dst] = cycle + latency
        busy = timing.initiation_interval
        if instr.opcode in (Opcode.LOAD, Opcode.STORE):
            # the LSU stays busy one cycle per coalesced line request
            busy = max(busy, getattr(self, "_last_line_count", 1))
        if busy > 1:
            self._fu_busy_until[timing.unit] = cycle + busy
        warp.next_issue_cycle = cycle + 1
        warp.retire_completed_writes(cycle)

    def _count_instruction(self, instr: Instruction, active_lanes: int) -> None:
        c = self.counters
        c.warp_instructions += 1
        c.lane_instructions += active_lanes
        bucket = CLASS_COUNTERS[instr.op_class]
        if bucket is not None:
            setattr(c, bucket, getattr(c, bucket) + 1)

    # ------------------------------------------------------------------ functional execution
    def _build_exec_table(self) -> Dict[Opcode, Callable]:
        O = Opcode
        table: Dict[Opcode, Callable] = {
            O.LI: self._exec_li,
            O.MOV: self._exec_mov,
            O.CSRR: self._exec_csrr,
            O.LOAD: self._exec_load,
            O.STORE: self._exec_store,
            O.JMP: self._exec_jmp,
            O.SPLIT: self._exec_split,
            O.JOIN: self._exec_join,
            O.LOOP_BEGIN: self._exec_loop_begin,
            O.LOOP_END: self._exec_loop_end,
            O.BAR: self._exec_bar,
            O.TMC: self._exec_tmc,
            O.NOP: self._exec_nop,
            O.HALT: self._exec_halt,
            O.FMA: self._exec_fma,
            O.I2F: self._exec_unary(float),
            O.F2I: self._exec_unary(lambda a: float(int(a))),
            O.ABS: self._exec_unary(abs),
            O.FABS: self._exec_unary(abs),
            O.NEG: self._exec_unary(lambda a: -a),
            O.FNEG: self._exec_unary(lambda a: -a),
            O.FSQRT: self._exec_unary(lambda a: math.sqrt(a) if a > 0.0 else 0.0),
            O.FEXP: self._exec_unary(math.exp),
            O.FLOG: self._exec_unary(lambda a: math.log(a) if a > 0.0 else float("-inf")),
        }
        binary_ops = {
            O.ADD: lambda a, b: a + b,
            O.SUB: lambda a, b: a - b,
            O.MUL: lambda a, b: a * b,
            O.AND: lambda a, b: float(int(a) & int(b)),
            O.OR: lambda a, b: float(int(a) | int(b)),
            O.XOR: lambda a, b: float(int(a) ^ int(b)),
            O.SHL: lambda a, b: float(int(a) << int(b)),
            O.SHR: lambda a, b: float(int(a) >> int(b)),
            O.SLT: lambda a, b: 1.0 if a < b else 0.0,
            O.SLE: lambda a, b: 1.0 if a <= b else 0.0,
            O.SEQ: lambda a, b: 1.0 if a == b else 0.0,
            O.SNE: lambda a, b: 1.0 if a != b else 0.0,
            O.MIN: min,
            O.MAX: max,
            O.FADD: lambda a, b: a + b,
            O.FSUB: lambda a, b: a - b,
            O.FMUL: lambda a, b: a * b,
            O.FMIN: min,
            O.FMAX: max,
            O.FLT: lambda a, b: 1.0 if a < b else 0.0,
            O.FLE: lambda a, b: 1.0 if a <= b else 0.0,
            O.FEQ: lambda a, b: 1.0 if a == b else 0.0,
        }
        for opcode, fn in binary_ops.items():
            table[opcode] = self._exec_binary(fn)
        table[O.DIV] = self._exec_binary(self._safe_div)
        table[O.FDIV] = self._exec_binary(self._safe_fdiv)
        table[O.REM] = self._exec_binary(self._safe_rem)
        return table

    # -- integer division helpers (truncate toward zero, as RISC-V does) ----
    @staticmethod
    def _safe_div(a: float, b: float) -> float:
        if b == 0:
            raise SimulationError("integer division by zero")
        return float(math.trunc(a / b))

    @staticmethod
    def _safe_fdiv(a: float, b: float) -> float:
        if b == 0.0:
            raise SimulationError("floating-point division by zero")
        return a / b

    @staticmethod
    def _safe_rem(a: float, b: float) -> float:
        if b == 0:
            raise SimulationError("integer remainder by zero")
        return float(a - math.trunc(a / b) * b)

    # -- generic ALU helpers -------------------------------------------------
    def _exec_binary(self, fn: Callable[[float, float], float]) -> Callable:
        def run(warp: Warp, instr: Instruction, cycle: int):
            s0, s1 = instr.srcs
            dst = instr.dst
            regs = warp.regs
            for lane in warp.active_lanes():
                lane_regs = regs[lane]
                lane_regs[dst] = fn(lane_regs[s0], lane_regs[s1])
            warp.pc += 1
            return None
        return run

    def _exec_unary(self, fn: Callable[[float], float]) -> Callable:
        def run(warp: Warp, instr: Instruction, cycle: int):
            (s0,) = instr.srcs
            dst = instr.dst
            for lane in warp.active_lanes():
                lane_regs = warp.regs[lane]
                lane_regs[dst] = fn(lane_regs[s0])
            warp.pc += 1
            return None
        return run

    def _exec_fma(self, warp: Warp, instr: Instruction, cycle: int):
        s0, s1, s2 = instr.srcs
        dst = instr.dst
        for lane in warp.active_lanes():
            lane_regs = warp.regs[lane]
            lane_regs[dst] = lane_regs[s0] * lane_regs[s1] + lane_regs[s2]
        warp.pc += 1
        return None

    def _exec_li(self, warp: Warp, instr: Instruction, cycle: int):
        value = float(instr.imm)
        dst = instr.dst
        for lane in warp.active_lanes():
            warp.regs[lane][dst] = value
        warp.pc += 1
        return None

    def _exec_mov(self, warp: Warp, instr: Instruction, cycle: int):
        (src,) = instr.srcs
        dst = instr.dst
        for lane in warp.active_lanes():
            lane_regs = warp.regs[lane]
            lane_regs[dst] = lane_regs[src]
        warp.pc += 1
        return None

    def _exec_csrr(self, warp: Warp, instr: Instruction, cycle: int):
        csr = int(instr.imm)
        dst = instr.dst
        for lane in warp.active_lanes():
            warp.regs[lane][dst] = float(warp.csr.read(csr, lane))
        warp.pc += 1
        return None

    # -- memory ---------------------------------------------------------------
    def _exec_load(self, warp: Warp, instr: Instruction, cycle: int):
        (addr_reg,) = instr.srcs
        offset = int(instr.imm or 0)
        dst = instr.dst
        lanes = warp.active_lanes()
        addresses = []
        for lane in lanes:
            address = int(warp.regs[lane][addr_reg]) + offset
            addresses.append(address)
            warp.regs[lane][dst] = self.memory.read(address)
        lines = coalesce(addresses, self.hierarchy.line_words)
        self._last_line_count = len(lines)
        latency = 1
        # The walk timer is an accumulate-only counter (not a histogram) kept
        # behind one enabled check: cheap enough for the per-instruction path,
        # and a pure wall-clock observer of the unchanged cycle arithmetic.
        walk_started = time.perf_counter() if RECORDER.enabled else 0.0
        for index, (line, _) in enumerate(lines):
            result = self.hierarchy.load_line(self.core_id, line, cycle + index)
            latency = max(latency, index + result.latency)
            self._count_memory_level(result.level, result.queue_cycles)
        if RECORDER.enabled:
            RECORDER.count("engine.memory.walk_seconds",
                           time.perf_counter() - walk_started)
            RECORDER.count("engine.memory.walks")
        self.counters.loads += 1
        self.counters.load_lines += len(lines)
        warp.pc += 1
        return latency

    def _exec_store(self, warp: Warp, instr: Instruction, cycle: int):
        value_reg, addr_reg = instr.srcs
        offset = int(instr.imm or 0)
        lanes = warp.active_lanes()
        addresses = []
        for lane in lanes:
            address = int(warp.regs[lane][addr_reg]) + offset
            addresses.append(address)
            self.memory.write(address, warp.regs[lane][value_reg])
        lines = coalesce(addresses, self.hierarchy.line_words)
        self._last_line_count = len(lines)
        walk_started = time.perf_counter() if RECORDER.enabled else 0.0
        for index, (line, _) in enumerate(lines):
            self.hierarchy.store_line(self.core_id, line, cycle + index)
        if RECORDER.enabled:
            RECORDER.count("engine.memory.walk_seconds",
                           time.perf_counter() - walk_started)
            RECORDER.count("engine.memory.walks")
        self.counters.stores += 1
        self.counters.store_lines += len(lines)
        warp.pc += 1
        return 1

    def _count_memory_level(self, level: str, queue_cycles: int) -> None:
        c = self.counters
        if level == "l1":
            c.l1_hits += 1
        elif level == "l2":
            c.l1_misses += 1
            c.l2_hits += 1
        elif level == "dram":
            c.l1_misses += 1
            c.l2_misses += 1
            c.dram_lines += 1
            c.dram_queue_cycles += queue_cycles

    # -- control flow ----------------------------------------------------------
    def _exec_jmp(self, warp: Warp, instr: Instruction, cycle: int):
        warp.pc = instr.target
        return None

    def _exec_split(self, warp: Warp, instr: Instruction, cycle: int):
        (cond_reg,) = instr.srcs
        taken = 0
        for lane in warp.active_lanes():
            if warp.regs[lane][cond_reg] != 0.0:
                taken |= 1 << lane
        full = warp.active_mask
        not_taken = full & ~taken
        else_pc, join_pc = instr.target, instr.target2
        if taken and not_taken:
            warp.simt_stack.append(("else", not_taken, full, else_pc, join_pc))
            warp.active_mask = taken
            warp.pc += 1
            self.counters.divergent_branches += 1
        elif taken:
            warp.simt_stack.append(("join", full, join_pc))
            warp.pc += 1
        else:
            warp.simt_stack.append(("join", full, join_pc))
            warp.pc = else_pc
        return None

    def _exec_join(self, warp: Warp, instr: Instruction, cycle: int):
        if not warp.simt_stack:
            raise SimulationError(
                f"core {self.core_id} warp {warp.warp_id}: JOIN with empty SIMT stack at pc {warp.pc}"
            )
        entry = warp.simt_stack.pop()
        if entry[0] == "else":
            _, not_taken, full, else_pc, join_pc = entry
            warp.simt_stack.append(("join", full, join_pc))
            warp.active_mask = not_taken
            warp.pc = else_pc
        elif entry[0] == "join":
            _, mask, join_pc = entry
            warp.active_mask = mask
            warp.pc = join_pc
        else:
            raise SimulationError(
                f"core {self.core_id} warp {warp.warp_id}: JOIN found a {entry[0]!r} entry"
            )
        return None

    def _exec_loop_begin(self, warp: Warp, instr: Instruction, cycle: int):
        warp.simt_stack.append(("loop", warp.active_mask))
        warp.pc += 1
        return None

    def _exec_loop_end(self, warp: Warp, instr: Instruction, cycle: int):
        (cond_reg,) = instr.srcs
        alive = 0
        for lane in warp.active_lanes():
            if warp.regs[lane][cond_reg] != 0.0:
                alive |= 1 << lane
        if alive:
            if alive != warp.active_mask:
                self.counters.divergent_branches += 1
            warp.active_mask = alive
            warp.pc = instr.target
        else:
            if not warp.simt_stack or warp.simt_stack[-1][0] != "loop":
                raise SimulationError(
                    f"core {self.core_id} warp {warp.warp_id}: LOOP_END without LOOP_BEGIN"
                )
            _, mask = warp.simt_stack.pop()
            warp.active_mask = mask
            warp.pc += 1
        return None

    # -- SIMT / system -----------------------------------------------------------
    def _exec_bar(self, warp: Warp, instr: Instruction, cycle: int):
        warp.at_barrier = True
        warp.pc += 1
        self.counters.barriers += 1
        self._barrier_waiting += 1
        participants = sum(1 for w in self.warps if not w.halted)
        if self._barrier_waiting >= participants:
            self._release_barrier(cycle)
        return None

    def _release_barrier(self, cycle: int) -> None:
        for w in self.warps:
            if w.at_barrier:
                w.at_barrier = False
                w.next_issue_cycle = cycle + self.config.barrier_latency
        self._barrier_waiting = 0

    def _exec_tmc(self, warp: Warp, instr: Instruction, cycle: int):
        keep = int(instr.imm)
        if keep <= 0:
            warp.halted = True
            self._check_barrier_after_halt(cycle)
            return None
        warp.active_mask = (1 << min(keep, warp.lane_count)) - 1
        warp.pc += 1
        return None

    def _exec_nop(self, warp: Warp, instr: Instruction, cycle: int):
        warp.pc += 1
        return None

    def _exec_halt(self, warp: Warp, instr: Instruction, cycle: int):
        warp.halted = True
        self._check_barrier_after_halt(cycle)
        return None

    def _check_barrier_after_halt(self, cycle: int) -> None:
        """A halting warp may be the last participant other warps wait for."""
        if self._barrier_waiting == 0:
            return
        participants = sum(1 for w in self.warps if not w.halted)
        if participants and self._barrier_waiting >= participants:
            self._release_barrier(cycle)
