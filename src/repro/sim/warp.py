"""Warp state.

A warp is the hardware scheduling unit: ``threads_per_warp`` lanes executing
the same instruction stream in lockstep under an active-lane mask.  The warp
object holds everything the core needs between cycles: the program counter,
the active mask, the per-lane register file, the SIMT reconvergence stack for
structured divergence, the CSR file published by the dispatcher, and the
scoreboard tracking in-flight register writes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.isa.registers import CsrFile


def mask_of(lane_count: int) -> int:
    """Full active mask for ``lane_count`` lanes."""
    return (1 << lane_count) - 1


def popcount(mask: int) -> int:
    """Number of set bits (active lanes) in ``mask``."""
    return bin(mask).count("1")


def lanes_of(mask: int) -> List[int]:
    """Indices of the active lanes in ``mask`` (ascending)."""
    lanes = []
    lane = 0
    while mask:
        if mask & 1:
            lanes.append(lane)
        mask >>= 1
        lane += 1
    return lanes


class Warp:
    """Execution state of one warp on one core."""

    __slots__ = (
        "warp_id", "lane_count", "pc", "active_mask", "regs", "simt_stack",
        "csr", "halted", "at_barrier", "next_issue_cycle", "scoreboard",
        "_lanes_cache", "_lanes_cache_mask",
    )

    def __init__(self, warp_id: int, lane_count: int, num_registers: int,
                 csr: CsrFile, active_lanes: Optional[int] = None):
        if lane_count < 1:
            raise ValueError("a warp needs at least one lane")
        active = lane_count if active_lanes is None else active_lanes
        if not (0 < active <= lane_count):
            raise ValueError(f"active_lanes must be in 1..{lane_count}, got {active}")
        self.warp_id = warp_id
        self.lane_count = lane_count
        self.pc = 0
        self.active_mask = mask_of(active)
        self.regs: List[List[float]] = [[0.0] * num_registers for _ in range(lane_count)]
        self.simt_stack: List[Tuple] = []
        self.csr = csr
        self.halted = False
        self.at_barrier = False
        self.next_issue_cycle = 0
        # register index -> cycle at which the pending write completes
        self.scoreboard: Dict[int, int] = {}
        self._lanes_cache: List[int] = lanes_of(self.active_mask)
        self._lanes_cache_mask = self.active_mask

    # ------------------------------------------------------------------
    def active_lanes(self) -> List[int]:
        """Indices of currently active lanes (cached per mask value)."""
        if self.active_mask != self._lanes_cache_mask:
            self._lanes_cache = lanes_of(self.active_mask)
            self._lanes_cache_mask = self.active_mask
        return self._lanes_cache

    @property
    def runnable(self) -> bool:
        """True when the warp still has work and is not parked at a barrier."""
        return not self.halted and not self.at_barrier

    def registers_ready_cycle(self, registers: Tuple[int, ...]) -> int:
        """Earliest cycle at which every register in ``registers`` is available."""
        ready = 0
        for reg in registers:
            pending = self.scoreboard.get(reg)
            if pending is not None and pending > ready:
                ready = pending
        return ready

    def retire_completed_writes(self, cycle: int) -> None:
        """Drop scoreboard entries whose writes completed at or before ``cycle``."""
        if not self.scoreboard:
            return
        done = [reg for reg, ready in self.scoreboard.items() if ready <= cycle]
        for reg in done:
            del self.scoreboard[reg]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "halted" if self.halted else ("barrier" if self.at_barrier else "running")
        return (f"Warp(id={self.warp_id}, pc={self.pc}, mask=0b{self.active_mask:b}, "
                f"{state})")


class FastWarp(Warp):
    """Warp with a numpy register file, used by the ``fast`` engine.

    Registers are stored transposed -- shape ``(num_registers, lane_count)``
    float64 -- so one architectural register across all lanes is a contiguous
    row and lane-parallel execution becomes a handful of numpy operations.
    Register values are float64 in both layouts, so the two engines perform
    bit-identical arithmetic.
    """

    __slots__ = ("_sel_cache", "_sel_cache_mask", "scratch", "lane_ids",
                 "_d_cache", "_own_ready", "reg_ready", "rows", "bit_weights")

    def __init__(self, warp_id: int, lane_count: int, num_registers: int,
                 csr: CsrFile, active_lanes: Optional[int] = None):
        super().__init__(warp_id, lane_count, num_registers, csr,
                         active_lanes=active_lanes)
        self.regs = np.zeros((num_registers, lane_count), dtype=np.float64)
        #: Pre-built views of each register row: ``rows[r]`` is
        #: ``regs[r]`` without paying ndarray ``__getitem__`` on every access
        #: (list indexing is several times cheaper, and handlers touch 2-4
        #: rows per issued instruction).
        self.rows = list(self.regs)
        #: Per-warp temporary row reused by multi-step operations (FMA).
        self.scratch = np.zeros(lane_count, dtype=np.float64)
        #: Lane indices as float64 (the vectorised THREAD_ID CSR read).
        self.lane_ids = np.arange(lane_count, dtype=np.float64)
        #: ``2.0 ** lane`` per lane: a bool-row dot product with this packs a
        #: lane predicate into a mask integer in one numpy call.  Exact only
        #: while the sum fits a float64 mantissa; wider warps use ``None``
        #: and fall back to ``np.packbits``.
        self.bit_weights = (
            np.power(2.0, np.arange(lane_count)) if lane_count <= 52 else None
        )
        self._sel_cache_mask = -1
        self._sel_cache: Union[slice, np.ndarray] = slice(0, 0)
        #: Readiness cache consulted by the fast issue path: the decoded
        #: tuple (``_Decoded.tup``) at the current PC plus the warp's own
        #: ready cycle.  ``None`` means "recompute"; invalidated on
        #: issue/barrier release.
        self._d_cache = None
        self._own_ready = 0
        #: Flat scoreboard: cycle at which each register's pending write
        #: completes (0 / a past cycle = no constraint).  Replaces the dict
        #: scoreboard on the fast path -- a stale entry whose cycle has
        #: passed never constrains, so entries are only ever overwritten.
        self.reg_ready = [0] * num_registers

    def selection(self) -> Union[None, slice, np.ndarray]:
        """Numpy index selecting the active lanes (cached per mask value).

        ``None`` means *every* lane is active (the common, convergent case):
        handlers then operate on whole register rows without building any
        index object.  A contiguous lane prefix (partial warps) is returned
        as a ``slice`` so register rows index as cheap views; arbitrary
        divergent masks fall back to an integer index array.
        """
        mask = self.active_mask
        if mask != self._sel_cache_mask:
            self._sel_cache_mask = mask
            if mask & (mask + 1) == 0:
                width = mask.bit_length()
                self._sel_cache = None if width == self.lane_count else slice(0, width)
            else:
                self._sel_cache = np.fromiter(lanes_of(mask), dtype=np.intp)
        return self._sel_cache
