"""The ``fast`` simulation engine: pre-decoded issue + vectorized lanes.

:class:`FastSimtCore` is a drop-in replacement for
:class:`~repro.sim.core.SimtCore` that produces **bit-identical** results
(cycles, every performance counter, every memory value) while cutting the
per-instruction Python overhead:

* **Pre-decoded programs.**  Every PC is decoded once per *program* (shared
  across cores and kernel calls, see :func:`decode_program`) into a
  :class:`_Decoded` record holding a compiled handler closure, the scoreboard
  registers to check, the functional-unit index and the timing -- the
  per-issue path never touches enum hashing, ``timing_for`` or tuple
  concatenation again.
* **Vectorized lanes.**  ALU/FPU/comparison/FMA execution, load/store address
  generation and the coalescer run as numpy operations over the warp's
  active-lane selection (:meth:`~repro.sim.warp.FastWarp.selection`) instead
  of per-lane Python loops.  All register state is float64 in both engines,
  and only operations whose numpy semantics match the scalar reference
  bit-for-bit are vectorized: ``FEXP``/``FLOG`` stay on
  ``math.exp``/``math.log`` (libm and numpy transcendentals may differ in
  the last ulp), and the ops that route values through Python ``int``
  (``AND``/``OR``/``XOR``/``SHL``/``SHR``/``F2I``) stay per-lane scalar
  (arbitrary-precision ints never wrap where int64 would, and ``int()``
  raises on NaN/inf where ``np.trunc`` propagates).
* **Cached readiness.**  A warp's own readiness (issue spacing + scoreboard)
  only changes when the warp itself issues or a barrier releases it, so it is
  computed once per stall episode instead of every visited cycle; the shared
  functional-unit constraint is the only part re-checked per attempt.
* **Batched statistics.**  Instruction-mix counters accumulate per PC and are
  folded into :class:`~repro.sim.stats.PerfCounters` once per kernel call
  (:meth:`FastSimtCore.flush_instruction_counters`), yielding identical totals
  to the reference engine's per-issue increments.

The event-skipping loop itself is :func:`run_fast` at the bottom of this
module (:class:`~repro.sim.gpu.Gpu` delegates to it): it caches each core's
``next_event_hint`` so stalled cores are not re-scanned every cycle, and
inlines the per-core issue attempt so no Python call frame is paid per
instruction.  A cached hint stays valid until the core issues again because
a core's readiness depends only on its own state (scoreboard, functional
units, barriers); other cores influence only the *latency* charged through
the shared memory system, never *whether* this core can issue.

Equivalence with the reference engine is enforced by
``tests/test_engine_differential.py`` and the golden-counter fixtures.
"""

from __future__ import annotations

import math
from time import perf_counter as _perf_counter
from typing import Callable, List, Optional

import numpy as np

from repro.isa.instruction import Instruction
from repro.isa.latencies import FunctionalUnit, timing_for
from repro.isa.opcodes import Opcode, op_class
from repro.isa.program import Program
from repro.isa.registers import NUM_ARG_SLOTS, Csr
from repro.sim.config import ArchConfig
from repro.sim.core import CLASS_COUNTERS, NEVER, SimtCore, SimulationError
from repro.sim.memory.hierarchy import MemoryHierarchy
from repro.sim.memory.mainmem import MainMemory
from repro.sim.scheduler import RoundRobinScheduler
from repro.sim.stats import PerfCounters
from repro.telemetry.recorder import RECORDER

_UNIT_INDEX = {unit: index for index, unit in enumerate(FunctionalUnit)}


def _pymin(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Python's ``min(a, b)`` (returns ``a`` unless ``b < a``), vectorized.

    ``np.minimum`` differs from Python ``min`` for NaNs and signed zeros;
    ``np.where`` reproduces the scalar semantics exactly.
    """
    return np.where(b < a, b, a)


def _pymax(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Python's ``max(a, b)``, vectorized (see :func:`_pymin`)."""
    return np.where(b > a, b, a)


def _bool_f64(a: np.ndarray) -> np.ndarray:
    return a.astype(np.float64)


#: Binary opcodes with an exactly-equivalent numpy implementation.
_BINARY_NP = {
    Opcode.ADD: np.add,
    Opcode.SUB: np.subtract,
    Opcode.MUL: np.multiply,
    Opcode.SLT: lambda a, b: _bool_f64(a < b),
    Opcode.SLE: lambda a, b: _bool_f64(a <= b),
    Opcode.SEQ: lambda a, b: _bool_f64(a == b),
    Opcode.SNE: lambda a, b: _bool_f64(a != b),
    Opcode.MIN: _pymin,
    Opcode.MAX: _pymax,
    Opcode.FADD: np.add,
    Opcode.FSUB: np.subtract,
    Opcode.FMUL: np.multiply,
    Opcode.FMIN: _pymin,
    Opcode.FMAX: _pymax,
    Opcode.FLT: lambda a, b: _bool_f64(a < b),
    Opcode.FLE: lambda a, b: _bool_f64(a <= b),
    Opcode.FEQ: lambda a, b: _bool_f64(a == b),
}

#: Binary opcodes that route per-lane values through Python ``int``: kept as
#: scalar loops because int64 vectorization is *not* equivalent -- Python
#: ints never wrap (SHL of 2.0 by 62 is exact where int64 left-shift wraps
#: negative), a negative shift count must raise, and operands at or beyond
#: 2**63 overflow the int64 cast.  These opcodes are cold (zero occurrences
#: in the nine library kernels' programs), so exactness costs nothing.
_BINARY_SCALAR = {
    Opcode.AND: lambda a, b: float(int(a) & int(b)),
    Opcode.OR: lambda a, b: float(int(a) | int(b)),
    Opcode.XOR: lambda a, b: float(int(a) ^ int(b)),
    Opcode.SHL: lambda a, b: float(int(a) << int(b)),
    Opcode.SHR: lambda a, b: float(int(a) >> int(b)),
}

#: Unary opcodes vectorized with numpy (all bit-exact vs. the scalar path:
#: sqrt is correctly rounded by IEEE 754, abs/neg are exact).
_UNARY_NP = {
    Opcode.I2F: lambda a: a,
    Opcode.ABS: np.abs,
    Opcode.FABS: np.abs,
    Opcode.NEG: np.negative,
    Opcode.FNEG: np.negative,
    Opcode.FSQRT: lambda a: np.sqrt(np.where(a > 0.0, a, 0.0)),
}

#: Unary opcodes kept scalar so the fast engine cannot drift from the
#: reference: libm exp/log may differ from numpy's in the last ulp, and F2I
#: must raise on NaN/inf exactly like ``int(float)`` does (``np.trunc``
#: would silently propagate them).
_UNARY_SCALAR = {
    Opcode.F2I: lambda a: float(int(a)),
    Opcode.FEXP: math.exp,
    Opcode.FLOG: lambda a: math.log(a) if a > 0.0 else float("-inf"),
}

#: Warp-uniform CSR numbers -> the :class:`~repro.isa.registers.CsrFile`
#: attribute holding the value, resolved at decode time so the per-issue path
#: skips :meth:`CsrFile.read`'s number dispatch.
_UNIFORM_CSR_ATTRS = {
    Csr.WARP_ID: "warp_id",
    Csr.CORE_ID: "core_id",
    Csr.NUM_THREADS: "num_threads",
    Csr.NUM_WARPS: "num_warps",
    Csr.NUM_CORES: "num_cores",
    Csr.LOCAL_SIZE: "local_size",
    Csr.GLOBAL_SIZE: "global_size",
    Csr.NUM_GROUPS: "num_groups",
    Csr.CALL_INDEX: "call_index",
}

#: Control opcodes that never touch the register file; the reference handlers
#: are reused directly (called unbound with the core as ``self``).
_BASE_HANDLERS = {
    Opcode.JMP: SimtCore._exec_jmp,
    Opcode.JOIN: SimtCore._exec_join,
    Opcode.LOOP_BEGIN: SimtCore._exec_loop_begin,
    Opcode.BAR: SimtCore._exec_bar,
    Opcode.NOP: SimtCore._exec_nop,
}

#: Opcodes that can halt a warp; issuing one makes the GPU loop re-check
#: whether the core drained.
_DRAINING = {
    Opcode.TMC: SimtCore._exec_tmc,
    Opcode.HALT: SimtCore._exec_halt,
}


class _Decoded:
    """Everything the issue path needs about one PC, computed once per program.

    ``tup`` packs the hot fields into one tuple so the issue loop performs a
    single slot load plus an unpack instead of seven attribute reads:
    ``(run, dst, check_regs, default_latency, initiation_interval,
    unit_index, fu_check, is_mem)``.
    """

    __slots__ = ("instr", "run", "dst", "check_regs", "default_latency",
                 "initiation_interval", "unit_index", "fu_check", "is_mem",
                 "bucket", "tup")


# ----------------------------------------------------------------------
# decode: program -> list of _Decoded (shared by every core and call)
# ----------------------------------------------------------------------
def decode_program(program: Program, config: ArchConfig) -> List[_Decoded]:
    """Decode ``program`` once for ``config``.

    The result is immutable and core-independent (handlers receive the core
    at run time), so one decode serves every core of every kernel call of a
    launch.  :class:`~repro.sim.gpu.Gpu` memoises it per program.
    """
    decoded = [_decode_one(program[pc], config) for pc in range(len(program))]
    # A functional unit only ever *blocks* an issue if some instruction of
    # this program can mark it busy (initiation interval > 1, or the
    # per-line LSU occupancy of memory ops).  Instructions bound for any
    # other unit skip the FU-availability read entirely.
    busyable = {d.unit_index for d in decoded
                if d.is_mem or d.initiation_interval > 1}
    for d in decoded:
        d.fu_check = d.unit_index in busyable
        d.tup = (d.run, d.dst, d.check_regs, d.default_latency,
                 d.initiation_interval, d.unit_index, d.fu_check, d.is_mem)
    return decoded


def _decode_one(instr: Instruction, config: ArchConfig) -> _Decoded:
    timing = timing_for(instr.opcode, config.timing_overrides)
    d = _Decoded()
    d.instr = instr
    d.dst = instr.dst
    d.check_regs = instr.srcs if instr.dst is None else instr.srcs + (instr.dst,)
    d.default_latency = timing.latency if timing.latency is not None else 1
    d.initiation_interval = timing.initiation_interval
    d.unit_index = _UNIT_INDEX[timing.unit]
    d.is_mem = instr.opcode in (Opcode.LOAD, Opcode.STORE)
    d.bucket = CLASS_COUNTERS[op_class(instr.opcode)]
    d.run = _compile(instr, config)
    return d


def _compile(instr: Instruction, config: ArchConfig) -> Callable:
    """Build the ``run(core, warp, cycle)`` closure for one instruction."""
    O = Opcode
    opcode = instr.opcode
    if opcode in _BINARY_NP:
        return _c_binary(instr, _BINARY_NP[opcode])
    if opcode in _BINARY_SCALAR:
        return _c_binary_scalar(instr, _BINARY_SCALAR[opcode])
    if opcode in (O.DIV, O.FDIV, O.REM):
        return _c_divlike(instr, opcode)
    if opcode in _UNARY_NP:
        return _c_unary(instr, _UNARY_NP[opcode])
    if opcode in _UNARY_SCALAR:
        return _c_unary_scalar(instr, _UNARY_SCALAR[opcode])
    if opcode is O.FMA:
        return _c_fma(instr)
    if opcode is O.LI:
        return _c_li(instr)
    if opcode is O.MOV:
        return _c_mov(instr)
    if opcode is O.CSRR:
        return _c_csrr(instr)
    if opcode is O.LOAD:
        return _c_load(instr, config)
    if opcode is O.STORE:
        return _c_store(instr, config)
    if opcode is O.SPLIT:
        return _c_split(instr)
    if opcode is O.LOOP_END:
        return _c_loop_end(instr)
    if opcode in _DRAINING:
        base = _DRAINING[opcode]

        def run_drain(core, warp, cycle, _instr=instr, _base=base):
            result = _base(core, warp, _instr, cycle)
            core._drain_check = True
            return result
        return run_drain
    base = _BASE_HANDLERS[opcode]

    def run_base(core, warp, cycle, _instr=instr, _base=base):
        return _base(core, warp, _instr, cycle)
    return run_base


# ----------------------------------------------------------------------
# compiled handlers (instruction constants baked in at decode time)
# ----------------------------------------------------------------------
def _c_binary(instr: Instruction, np_fn: Callable) -> Callable:
    s0, s1 = instr.srcs
    dst = instr.dst
    if isinstance(np_fn, np.ufunc):
        # True ufuncs write straight into the destination row (``None`` =
        # all lanes) or row view (slice), saving a temporary and a copy.
        def run(core, warp, cycle):
            rows = warp.rows
            mask = warp.active_mask
            sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
            if sel is None:
                np_fn(rows[s0], rows[s1], out=rows[dst])
            elif type(sel) is slice:
                np_fn(rows[s0][sel], rows[s1][sel], out=rows[dst][sel])
            else:
                rows[dst][sel] = np_fn(rows[s0][sel], rows[s1][sel])
            warp.pc += 1
        return run

    def run(core, warp, cycle):
        rows = warp.rows
        mask = warp.active_mask
        sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
        if sel is None:
            rows[dst][:] = np_fn(rows[s0], rows[s1])
        else:
            rows[dst][sel] = np_fn(rows[s0][sel], rows[s1][sel])
        warp.pc += 1
    return run


def _c_binary_scalar(instr: Instruction, fn: Callable) -> Callable:
    s0, s1 = instr.srcs
    dst = instr.dst

    def run(core, warp, cycle):
        rows = warp.rows
        a_row, b_row, dst_row = rows[s0], rows[s1], rows[dst]
        for lane in warp.active_lanes():
            dst_row[lane] = fn(a_row[lane], b_row[lane])
        warp.pc += 1
    return run


def _c_divlike(instr: Instruction, opcode: Opcode) -> Callable:
    s0, s1 = instr.srcs
    dst = instr.dst

    if opcode is not Opcode.FDIV:
        # DIV/REM truncate through math.trunc, which raises on inf/NaN where
        # np.trunc would silently propagate them -- so they stay per-lane
        # scalar, reusing the reference handlers verbatim (same results,
        # same divide-by-zero and non-finite errors).
        fn = SimtCore._safe_div if opcode is Opcode.DIV else SimtCore._safe_rem
        return _c_binary_scalar(instr, fn)

    def run(core, warp, cycle):
        rows = warp.rows
        mask = warp.active_mask
        sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
        if sel is None:
            a, b = rows[s0], rows[s1]
        else:
            a, b = rows[s0][sel], rows[s1][sel]
        if np.any(b == 0.0):
            raise SimulationError("floating-point division by zero")
        if sel is None:
            rows[dst][:] = a / b
        else:
            rows[dst][sel] = a / b
        warp.pc += 1
    return run


def _c_unary(instr: Instruction, np_fn: Callable) -> Callable:
    (s0,) = instr.srcs
    dst = instr.dst
    if isinstance(np_fn, np.ufunc):
        def run(core, warp, cycle):
            rows = warp.rows
            mask = warp.active_mask
            sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
            if sel is None:
                np_fn(rows[s0], out=rows[dst])
            elif type(sel) is slice:
                np_fn(rows[s0][sel], out=rows[dst][sel])
            else:
                rows[dst][sel] = np_fn(rows[s0][sel])
            warp.pc += 1
        return run

    def run(core, warp, cycle):
        rows = warp.rows
        mask = warp.active_mask
        sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
        if sel is None:
            rows[dst][:] = np_fn(rows[s0])
        else:
            rows[dst][sel] = np_fn(rows[s0][sel])
        warp.pc += 1
    return run


def _c_unary_scalar(instr: Instruction, fn: Callable) -> Callable:
    (s0,) = instr.srcs
    dst = instr.dst

    def run(core, warp, cycle):
        rows = warp.rows
        src_row, dst_row = rows[s0], rows[dst]
        for lane in warp.active_lanes():
            dst_row[lane] = fn(src_row[lane])
        warp.pc += 1
    return run


def _c_fma(instr: Instruction) -> Callable:
    s0, s1, s2 = instr.srcs
    dst = instr.dst

    def run(core, warp, cycle):
        rows = warp.rows
        mask = warp.active_mask
        sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
        if sel is None:
            scratch = warp.scratch
            np.multiply(rows[s0], rows[s1], out=scratch)
            np.add(scratch, rows[s2], out=rows[dst])
        elif type(sel) is slice:
            scratch = warp.scratch[sel]
            np.multiply(rows[s0][sel], rows[s1][sel], out=scratch)
            np.add(scratch, rows[s2][sel], out=rows[dst][sel])
        else:
            rows[dst][sel] = rows[s0][sel] * rows[s1][sel] + rows[s2][sel]
        warp.pc += 1
    return run


def _c_li(instr: Instruction) -> Callable:
    value = float(instr.imm)
    dst = instr.dst

    def run(core, warp, cycle):
        mask = warp.active_mask
        sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
        if sel is None:
            warp.rows[dst].fill(value)
        else:
            warp.rows[dst][sel] = value
        warp.pc += 1
    return run


def _c_mov(instr: Instruction) -> Callable:
    (src,) = instr.srcs
    dst = instr.dst

    def run(core, warp, cycle):
        rows = warp.rows
        mask = warp.active_mask
        sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
        if sel is None:
            rows[dst][:] = rows[src]
        else:
            rows[dst][sel] = rows[src][sel]
        warp.pc += 1
    return run


def _c_csrr(instr: Instruction) -> Callable:
    """CSR reads, specialised per CSR number at decode time.

    Only ``THREAD_ID``, ``WORKGROUP_ID`` and ``LOCAL_COUNT`` vary per lane
    (see :class:`repro.isa.registers.CsrFile`); every other CSR is uniform
    across the warp and needs a single scalar read instead of one per lane.
    """
    csr_number = int(instr.imm)
    dst = instr.dst
    if csr_number == Csr.THREAD_ID:
        def run(core, warp, cycle):
            mask = warp.active_mask
            sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
            if sel is None:
                warp.rows[dst][:] = warp.lane_ids
            else:
                warp.rows[dst][sel] = warp.lane_ids[sel]
            warp.pc += 1
        return run
    if csr_number in (Csr.WORKGROUP_ID, Csr.LOCAL_COUNT):
        attr = "workgroup_ids" if csr_number == Csr.WORKGROUP_ID else "local_counts"

        def run(core, warp, cycle):
            values = getattr(warp.csr, attr)
            row = np.zeros(warp.lane_count, dtype=np.float64)
            row[:len(values)] = values
            mask = warp.active_mask
            sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
            if sel is None:
                warp.rows[dst][:] = row
            else:
                warp.rows[dst][sel] = row[sel]
            warp.pc += 1
        return run

    attr = _UNIFORM_CSR_ATTRS.get(csr_number)
    if attr is not None:
        def run(core, warp, cycle):
            value = getattr(warp.csr, attr)
            mask = warp.active_mask
            sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
            if sel is None:
                warp.rows[dst].fill(value)
            else:
                warp.rows[dst][sel] = value
            warp.pc += 1
        return run
    if Csr.ARG_BASE <= csr_number < Csr.ARG_BASE + NUM_ARG_SLOTS:
        slot = csr_number - Csr.ARG_BASE

        def run(core, warp, cycle):
            value = warp.csr.args.get(slot, 0.0)
            mask = warp.active_mask
            sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
            if sel is None:
                warp.rows[dst].fill(value)
            else:
                warp.rows[dst][sel] = value
            warp.pc += 1
        return run

    def run(core, warp, cycle):
        # Unknown CSR: read() raises exactly like the reference's per-lane
        # read would.
        value = warp.csr.read(csr_number, 0)
        mask = warp.active_mask
        sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
        if sel is None:
            warp.rows[dst].fill(value)
        else:
            warp.rows[dst][sel] = value
        warp.pc += 1
    return run


# -- memory ---------------------------------------------------------------
def _line_math(line_words: int) -> Callable:
    """``addresses -> per-lane line addresses``; a shift when the line size is
    a power of two (int64 ``>>`` floors exactly like ``//``)."""
    if line_words & (line_words - 1) == 0:
        shift = line_words.bit_length() - 1
        return lambda addresses: addresses >> shift
    return lambda addresses: addresses // line_words


def _lines_in_bounds(lines, full_lines: int) -> bool:
    """True when every line index lies in ``[0, full_lines)``.

    A line inside that range contains only valid word addresses, so the
    per-address bounds check can be skipped; anything else falls back to the
    exact (raising) check.  ``lines`` is any iterable of line indices (the
    handlers pass the dedup dict's keys).
    """
    if len(lines) == 1:
        return 0 <= next(iter(lines)) < full_lines
    return min(lines) >= 0 and max(lines) < full_lines


def _c_load(instr: Instruction, config: ArchConfig) -> Callable:
    (addr_reg,) = instr.srcs
    offset = int(instr.imm or 0)
    dst = instr.dst
    to_lines = _line_math(config.l1_line_words)

    def run(core, warp, cycle):
        rows = warp.rows
        mask = warp.active_mask
        sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
        if sel is None:
            addresses = rows[addr_reg].astype(np.int64)
        else:
            addresses = rows[addr_reg][sel].astype(np.int64)
        if offset:
            addresses += offset
        # Dedup to unique lines in first-appearance order (same request order
        # and count as the reference coalescer); iterated as dict keys.
        lines = dict.fromkeys(to_lines(addresses).tolist())
        num_lines = len(lines)
        core._last_line_count = num_lines
        memory = core.memory
        if _lines_in_bounds(lines, core._full_lines):
            if sel is None:
                memory.gather_unchecked(addresses, out=rows[dst])
            else:
                rows[dst][sel] = memory.gather_unchecked(addresses)
        else:
            values = memory.gather(addresses)  # exact per-batch check, may raise
            if sel is None:
                rows[dst][:] = values
            else:
                rows[dst][sel] = values
        # No per-access _count_memory_level here: the cache/DRAM counters are
        # overwritten from the hierarchy's own statistics when the call ends
        # (Gpu._fold_memory_statistics), so per-access increments are unused.
        if RECORDER.enabled:
            walk_started = _perf_counter()
            latency = core.hierarchy.load_lines_fast(core.core_id, lines, cycle)
            RECORDER.count("engine.memory.walk_seconds",
                           _perf_counter() - walk_started)
            RECORDER.count("engine.memory.walks")
        else:
            latency = core.hierarchy.load_lines_fast(core.core_id, lines, cycle)
        counters = core.counters
        counters.loads += 1
        counters.load_lines += num_lines
        warp.pc += 1
        return latency
    return run


def _c_store(instr: Instruction, config: ArchConfig) -> Callable:
    value_reg, addr_reg = instr.srcs
    offset = int(instr.imm or 0)
    to_lines = _line_math(config.l1_line_words)

    def run(core, warp, cycle):
        rows = warp.rows
        mask = warp.active_mask
        sel = warp._sel_cache if mask == warp._sel_cache_mask else warp.selection()
        if sel is None:
            addresses = rows[addr_reg].astype(np.int64)
            values = rows[value_reg]
        else:
            addresses = rows[addr_reg][sel].astype(np.int64)
            values = rows[value_reg][sel]
        if offset:
            addresses += offset
        lines = dict.fromkeys(to_lines(addresses).tolist())
        num_lines = len(lines)
        core._last_line_count = num_lines
        memory = core.memory
        if _lines_in_bounds(lines, core._full_lines):
            memory.scatter_unchecked(addresses, values)
        else:
            memory.scatter(addresses, values)  # exact per-batch check, may raise
        if RECORDER.enabled:
            walk_started = _perf_counter()
            core.hierarchy.store_lines_fast(core.core_id, lines, cycle)
            RECORDER.count("engine.memory.walk_seconds",
                           _perf_counter() - walk_started)
            RECORDER.count("engine.memory.walks")
        else:
            core.hierarchy.store_lines_fast(core.core_id, lines, cycle)
        counters = core.counters
        counters.stores += 1
        counters.store_lines += num_lines
        warp.pc += 1
        return 1
    return run


# -- divergence -----------------------------------------------------------
def _nonzero_mask(warp, cond_reg: int) -> int:
    """Mask of active lanes whose ``cond_reg`` is non-zero.

    Compares the whole register row (stale values in inactive lanes are
    masked off by ``active_mask``), then packs the boolean vector into an
    int.  Warps narrow enough for the mask to fit a float64 mantissa use a
    dot product with per-lane powers of two (one numpy call, exact because
    the sum of distinct powers below 2**52 is exactly representable); wider
    warps fall back to ``packbits``.
    """
    nonzero = warp.rows[cond_reg] != 0.0
    weights = warp.bit_weights
    if weights is not None:
        return int(nonzero.dot(weights)) & warp.active_mask
    packed = np.packbits(nonzero, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little") & warp.active_mask


def _c_split(instr: Instruction) -> Callable:
    (cond_reg,) = instr.srcs
    else_pc, join_pc = instr.target, instr.target2

    def run(core, warp, cycle):
        taken = _nonzero_mask(warp, cond_reg)
        full = warp.active_mask
        not_taken = full & ~taken
        if taken and not_taken:
            warp.simt_stack.append(("else", not_taken, full, else_pc, join_pc))
            warp.active_mask = taken
            warp.pc += 1
            core.counters.divergent_branches += 1
        elif taken:
            warp.simt_stack.append(("join", full, join_pc))
            warp.pc += 1
        else:
            warp.simt_stack.append(("join", full, join_pc))
            warp.pc = else_pc
    return run


def _c_loop_end(instr: Instruction) -> Callable:
    (cond_reg,) = instr.srcs
    target = instr.target

    def run(core, warp, cycle):
        alive = _nonzero_mask(warp, cond_reg)
        if alive:
            if alive != warp.active_mask:
                core.counters.divergent_branches += 1
            warp.active_mask = alive
            warp.pc = target
        else:
            if not warp.simt_stack or warp.simt_stack[-1][0] != "loop":
                raise SimulationError(
                    f"core {core.core_id} warp {warp.warp_id}: LOOP_END without LOOP_BEGIN"
                )
            _, mask = warp.simt_stack.pop()
            warp.active_mask = mask
            warp.pc += 1
    return run


# ----------------------------------------------------------------------
class FastSimtCore(SimtCore):
    """SIMT core with pre-decoded issue and numpy lane execution."""

    engine_name = "fast"

    def _build_exec_table(self):
        # The reference dispatch table is dead weight here: every opcode runs
        # through its pre-compiled ``_Decoded.run`` closure instead.  Skipping
        # the ~50 closure constructions matters because cores are rebuilt for
        # every kernel call.
        return {}

    def __init__(self, core_id: int, config: ArchConfig, program: Program,
                 hierarchy: MemoryHierarchy, memory: MainMemory,
                 counters: PerfCounters, tracer=None,
                 decoded: Optional[List[_Decoded]] = None):
        super().__init__(core_id, config, program, hierarchy, memory,
                         counters, tracer=tracer)
        self._fu_busy: List[int] = [0] * len(_UNIT_INDEX)
        self._last_line_count = 1
        #: Number of cache lines that lie *entirely* inside device memory.  A
        #: coalesced line index in ``[0, _full_lines)`` proves every word
        #: address of that line is in bounds, letting loads/stores take the
        #: unchecked gather/scatter path.
        self._full_lines = memory.size_words // config.l1_line_words
        self._decode = decoded if decoded is not None else decode_program(program, config)
        self._plen = len(self._decode)
        self._pc_issues: List[int] = [0] * self._plen
        self._pc_lanes: List[int] = [0] * self._plen
        self._drain_check = False
        if isinstance(self._scheduler, RoundRobinScheduler):
            self._rr_n = self._scheduler.num_warps
            self._rr_next = 0
            self._is_rr = True
            # Built lazily on the first issue attempt, once the warp count is
            # known: each rotation is pre-filtered to existing warp indices so
            # the scan never tests ``index >= num_warps``.
            self._rr_orders: Optional[List[List[int]]] = None
        else:
            self._is_rr = False
            self._rr_orders = None

    # The per-issue logic lives inlined in :func:`run_fast` below -- one
    # Python call frame per issued instruction was the engine's largest
    # remaining overhead.

    def _release_barrier(self, cycle: int) -> None:
        for w in self.warps:
            if w.at_barrier:
                w.at_barrier = False
                w.next_issue_cycle = cycle + self.config.barrier_latency
                w._d_cache = None  # readiness changed: recompute on next visit
        self._barrier_waiting = 0

    # ------------------------------------------------------------------ statistics
    def flush_instruction_counters(self) -> None:
        """Fold the per-PC issue tallies into the shared counters.

        Called once per kernel call by the fast GPU loop; produces exactly
        the totals the reference engine accumulates per issue.
        """
        counters = self.counters
        decode = self._decode
        lanes = self._pc_lanes
        warp_total = 0
        lane_total = 0
        buckets = {}
        for pc, issued in enumerate(self._pc_issues):
            if not issued:
                continue
            warp_total += issued
            lane_total += lanes[pc]
            bucket = decode[pc].bucket
            if bucket is not None:
                buckets[bucket] = buckets.get(bucket, 0) + issued
        counters.warp_instructions += warp_total
        counters.lane_instructions += lane_total
        for bucket, count in buckets.items():
            setattr(counters, bucket, getattr(counters, bucket) + count)
        self._pc_issues = [0] * len(self._pc_issues)
        self._pc_lanes = [0] * len(self._pc_lanes)


# ----------------------------------------------------------------------
# the event-skipping issue loop (Gpu delegates here for the fast engine)
# ----------------------------------------------------------------------
def run_fast(active_cores: List[FastSimtCore], counters: PerfCounters,
             max_cycles: Optional[int], tracer) -> int:
    """Simulate one kernel call on ``active_cores`` and return its cycle count.

    Identical cycle arithmetic to :meth:`repro.sim.gpu.Gpu._run_reference` --
    same visited cycles, same issue order, same stall accounting -- with two
    structural accelerations:

    * **event skipping**: a core whose cached ``next_event_hint`` lies in the
      future is charged its stall without being re-scanned, and when no core
      can issue the clock jumps straight to the earliest hint.  A cached hint
      stays valid until the core issues again because a core's readiness
      depends only on its own state (scoreboard, functional units, barriers);
      other cores influence only the *latency* charged through the shared
      memory system, never *whether* this core can issue.
    * **inlined issue**: the per-core issue attempt (the fast counterpart of
      :meth:`~repro.sim.core.SimtCore.try_issue`) is inlined into the loop
      body, saving one Python call frame per issued instruction.

    Core-drain checks run only after an instruction that can halt a warp
    (``TMC``/``HALT`` set ``_drain_check`` at decode time).
    """
    busy = [core for core in active_cores if core.busy]
    # Cached per-core next_event_hint, parallel to ``busy``.  A negative
    # value means "unknown, must attempt an issue".
    hints = [-1.0] * len(busy)
    cycle = 0
    issue_cycles = stall_cycles = active_cycles = 0
    while busy:
        if max_cycles is not None and cycle > max_cycles:
            raise SimulationError(
                f"kernel call exceeded max_cycles={max_cycles} "
                f"({len(busy)} cores still busy)"
            )
        issued = 0
        drained = False
        next_hint = NEVER
        for i, core in enumerate(busy):
            hint = hints[i]
            if hint > cycle:
                if hint < next_hint:
                    next_hint = hint
                continue
            # ---- one issue attempt for `core` (try_issue, inlined) ----
            warps = core.warps
            num_warps = len(warps)
            if core._is_rr:
                orders = core._rr_orders
                if orders is None:
                    # Warps are all attached before the first cycle, so the
                    # filtered rotations stay valid for the whole call.
                    n = core._rr_n
                    orders = core._rr_orders = [
                        [index for offset in range(n)
                         if (index := (start + offset) % n) < num_warps]
                        for start in range(n)
                    ]
                order = orders[core._rr_next]
            else:
                order = [w for w in core._scheduler.priority_order()
                         if w < num_warps]
            decode = core._decode
            fu_busy = core._fu_busy
            earliest = NEVER
            issued_here = False
            for index in order:
                warp = warps[index]
                if warp.halted or warp.at_barrier:
                    continue
                # A warp's own readiness (issue spacing + scoreboard) changes
                # only when the warp issues or a barrier releases it, so it
                # is cached on the warp across failed attempts; only the
                # shared FU constraint is re-read.  The common
                # immediate-issue case skips the cache writes entirely.
                d = warp._d_cache
                if d is None:
                    pc = warp.pc
                    try:
                        d = decode[pc].tup
                    except IndexError:
                        # Exactly the reference failure mode: tuple indexing
                        # in both engines wraps negative PCs and raises past
                        # the end.
                        raise SimulationError(
                            f"core {core.core_id} warp {warp.warp_id}: "
                            f"PC {pc} ran off the program"
                        ) from None
                    (run, dst, check_regs, default_latency, interval,
                     unit_index, fu_check, is_mem) = d
                    own = warp.next_issue_cycle
                    reg_ready = warp.reg_ready
                    for reg in check_regs:
                        pending = reg_ready[reg]
                        if pending > own:
                            own = pending
                else:
                    own = warp._own_ready
                    pc = warp.pc
                    (run, dst, check_regs, default_latency, interval,
                     unit_index, fu_check, is_mem) = d
                if fu_check:
                    fu_free = fu_busy[unit_index]
                    ready = own if own >= fu_free else fu_free
                else:
                    ready = own
                if ready <= cycle:
                    # ---- issue ----
                    core._pc_issues[pc] += 1
                    core._pc_lanes[pc] += warp.active_mask.bit_count()
                    if tracer is not None:
                        instr = decode[pc].instr
                        tracer.record(cycle=cycle, core=core.core_id,
                                      warp=warp.warp_id, pc=pc,
                                      opcode=instr.opcode,
                                      mask=warp.active_mask,
                                      section=instr.section)
                    latency = run(core, warp, cycle)
                    if latency is None:
                        latency = default_latency
                    if dst is not None:
                        warp.reg_ready[dst] = cycle + latency
                    fu_hold = interval
                    if is_mem and core._last_line_count > fu_hold:
                        fu_hold = core._last_line_count
                    if fu_hold > 1:
                        fu_busy[unit_index] = cycle + fu_hold
                    warp.next_issue_cycle = cycle + 1
                    warp._d_cache = None
                    # Completed scoreboard entries are *not* eagerly retired:
                    # an entry whose cycle has passed can never change a
                    # decision or a hint (readiness is a max against future
                    # constraints), and each slot is overwritten on its next
                    # write, so the list stays bounded by the register count.
                    if core._is_rr:
                        core._rr_next = (index + 1) % core._rr_n
                    else:
                        core._scheduler.issued(index)
                    issued_here = True
                    break
                warp._d_cache = d
                warp._own_ready = own
                if ready < earliest:
                    earliest = ready
            if issued_here:
                issued += 1
                hints[i] = -1.0
                if core._drain_check:
                    core._drain_check = False
                    if not core.busy:
                        drained = True
            else:
                hints[i] = earliest
                if earliest < next_hint:
                    next_hint = earliest
        # Every busy core either issued or stalled this visited cycle -- the
        # same per-core accounting as the reference loop.
        stall_cycles += len(busy) - issued
        if issued:
            issue_cycles += issued
            active_cycles += 1
            cycle += 1
            if drained:
                pairs = [(core, hints[i]) for i, core in enumerate(busy)
                         if core.busy]
                busy = [core for core, _ in pairs]
                hints = [hint for _, hint in pairs]
        else:
            if next_hint is NEVER or next_hint <= cycle:
                raise SimulationError(
                    f"simulation deadlock at cycle {cycle}: no core can "
                    f"make progress"
                )
            cycle = int(next_hint)
    counters.issue_cycles += issue_cycles
    counters.stall_cycles += stall_cycles
    counters.active_cycles += active_cycles
    for core in active_cores:
        core.flush_instruction_counters()
    return cycle
