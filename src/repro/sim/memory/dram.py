"""DRAM latency / bandwidth model.

DRAM is modelled as a fixed access latency plus a global bandwidth limit
expressed in cache lines per cycle.  Requests that arrive faster than the
bandwidth allows queue up: the model keeps a "next free slot" time and each
request is served at ``max(arrival, next_free)``, so sustained over-subscription
shows up as growing queueing delay -- the behaviour that makes memory-bound
kernels insensitive to extra parallelism in the paper's Figure 2.
"""

from __future__ import annotations


class DramModel:
    """Latency + token-bucket bandwidth model for the DRAM back end."""

    __slots__ = ("latency", "lines_per_cycle", "_next_free", "lines_transferred",
                 "total_queue_cycles")

    def __init__(self, latency: int, lines_per_cycle: float):
        if latency < 0:
            raise ValueError("DRAM latency cannot be negative")
        if lines_per_cycle <= 0:
            raise ValueError("DRAM bandwidth must be positive")
        self.latency = latency
        self.lines_per_cycle = lines_per_cycle
        self._next_free = 0.0
        self.lines_transferred = 0
        self.total_queue_cycles = 0

    def access(self, now: int) -> int:
        """Issue one line transfer at cycle ``now``; return its completion cycle."""
        start = max(float(now), self._next_free)
        queue_delay = start - now
        self._next_free = start + 1.0 / self.lines_per_cycle
        self.lines_transferred += 1
        self.total_queue_cycles += int(queue_delay)
        return int(start + self.latency)

    def reset(self) -> None:
        """Clear queue state and statistics (between launches)."""
        self._next_free = 0.0
        self.lines_transferred = 0
        self.total_queue_cycles = 0

    @property
    def busy_until(self) -> float:
        """Cycle at which the DRAM channel next becomes free."""
        return self._next_free
