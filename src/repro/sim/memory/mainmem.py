"""Word-addressed backing store.

The simulator separates *data* from *timing*: every load and store reads or
writes real values held in a :class:`MainMemory` (a numpy ``float64`` array,
word addressed), while the caches and DRAM model only decide how long the
access takes.  Keeping real data around lets every kernel's output be checked
against a numpy reference implementation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class MemoryError_(RuntimeError):
    """Raised on out-of-bounds device-memory accesses.

    (Named with a trailing underscore to avoid shadowing the Python builtin.)
    """


class MainMemory:
    """A flat, word-addressed device memory.

    One word corresponds to one 32-bit element of the original system; values
    are stored as ``float64`` so integer indices survive round-trips exactly.
    """

    def __init__(self, size_words: int):
        if size_words <= 0:
            raise ValueError("memory size must be positive")
        self._data = np.zeros(size_words, dtype=np.float64)

    # ------------------------------------------------------------------
    @property
    def size_words(self) -> int:
        """Capacity in words."""
        return int(self._data.shape[0])

    def _check(self, address: int, count: int = 1) -> None:
        if address < 0 or address + count > self.size_words:
            raise MemoryError_(
                f"access [{address}, {address + count}) outside memory of {self.size_words} words"
            )

    # ------------------------------------------------------------------ scalar access
    def read(self, address: int) -> float:
        """Read one word."""
        self._check(address)
        return float(self._data[address])

    def write(self, address: int, value: float) -> None:
        """Write one word."""
        self._check(address)
        self._data[address] = value

    # ------------------------------------------------------------------ vector access
    def _check_batch(self, addresses: np.ndarray, what: str) -> None:
        """Single-pass bounds check: the unsigned reinterpretation turns
        negative addresses into huge values, so one ``max`` covers both ends."""
        if len(addresses) and int(addresses.view(np.uint64).max()) >= self.size_words:
            raise MemoryError_(
                f"{what} touches addresses outside memory of {self.size_words} words"
            )

    def gather(self, addresses: np.ndarray) -> np.ndarray:
        """Read one word per address (the vectorised load path of the fast engine).

        Values are read from the same float64 backing store scalar
        :meth:`read` uses, so gathered loads are bit-identical to per-lane
        reads.  Out-of-bounds addresses raise like :meth:`read` does, though
        the error reports the whole batch rather than the first bad lane.
        ``addresses`` must be int64.
        """
        self._check_batch(addresses, "gather")
        return self._data.take(addresses)

    def scatter(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Write one word per address (the vectorised store path).

        Duplicate addresses resolve to the last lane's value, matching the
        ascending-lane write order of the scalar path.  ``addresses`` must be
        int64.
        """
        self._check_batch(addresses, "scatter")
        self._data[addresses] = values

    def gather_unchecked(self, addresses: np.ndarray, out=None) -> np.ndarray:
        """:meth:`gather` without the bounds check.

        Callers must have proven every address in range (the fast engine
        checks the coalesced line list); ``out`` lets loads land directly in
        a register row.
        """
        return self._data.take(addresses, out=out)

    def scatter_unchecked(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """:meth:`scatter` without the bounds check (see above)."""
        self._data[addresses] = values

    # ------------------------------------------------------------------ block access
    def read_block(self, address: int, count: int) -> np.ndarray:
        """Return a copy of ``count`` words starting at ``address``."""
        self._check(address, count)
        return self._data[address:address + count].copy()

    def write_block(self, address: int, values: Sequence[float]) -> None:
        """Write a block of words starting at ``address``."""
        array = np.asarray(values, dtype=np.float64).ravel()
        self._check(address, len(array))
        self._data[address:address + len(array)] = array

    def fill(self, address: int, count: int, value: float = 0.0) -> None:
        """Set ``count`` words starting at ``address`` to ``value``."""
        self._check(address, count)
        self._data[address:address + count] = value

    def view(self) -> np.ndarray:
        """Read-only view of the whole memory (for debugging and tests)."""
        result = self._data.view()
        result.flags.writeable = False
        return result
