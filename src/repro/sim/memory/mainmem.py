"""Word-addressed backing store.

The simulator separates *data* from *timing*: every load and store reads or
writes real values held in a :class:`MainMemory` (a numpy ``float64`` array,
word addressed), while the caches and DRAM model only decide how long the
access takes.  Keeping real data around lets every kernel's output be checked
against a numpy reference implementation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class MemoryError_(RuntimeError):
    """Raised on out-of-bounds device-memory accesses.

    (Named with a trailing underscore to avoid shadowing the Python builtin.)
    """


class MainMemory:
    """A flat, word-addressed device memory.

    One word corresponds to one 32-bit element of the original system; values
    are stored as ``float64`` so integer indices survive round-trips exactly.
    """

    def __init__(self, size_words: int):
        if size_words <= 0:
            raise ValueError("memory size must be positive")
        self._data = np.zeros(size_words, dtype=np.float64)

    # ------------------------------------------------------------------
    @property
    def size_words(self) -> int:
        """Capacity in words."""
        return int(self._data.shape[0])

    def _check(self, address: int, count: int = 1) -> None:
        if address < 0 or address + count > self.size_words:
            raise MemoryError_(
                f"access [{address}, {address + count}) outside memory of {self.size_words} words"
            )

    # ------------------------------------------------------------------ scalar access
    def read(self, address: int) -> float:
        """Read one word."""
        self._check(address)
        return float(self._data[address])

    def write(self, address: int, value: float) -> None:
        """Write one word."""
        self._check(address)
        self._data[address] = value

    # ------------------------------------------------------------------ block access
    def read_block(self, address: int, count: int) -> np.ndarray:
        """Return a copy of ``count`` words starting at ``address``."""
        self._check(address, count)
        return self._data[address:address + count].copy()

    def write_block(self, address: int, values: Sequence[float]) -> None:
        """Write a block of words starting at ``address``."""
        array = np.asarray(values, dtype=np.float64).ravel()
        self._check(address, len(array))
        self._data[address:address + len(array)] = array

    def fill(self, address: int, count: int, value: float = 0.0) -> None:
        """Set ``count`` words starting at ``address`` to ``value``."""
        self._check(address, count)
        self._data[address:address + count] = value

    def view(self) -> np.ndarray:
        """Read-only view of the whole memory (for debugging and tests)."""
        result = self._data.view()
        result.flags.writeable = False
        return result
