"""Set-associative cache model.

The cache is *tag only*: it tracks which lines are resident to decide hits
and misses, while actual data lives in :class:`~repro.sim.memory.mainmem.MainMemory`.
Replacement is true LRU per set.  The model is used for both the per-core L1
data caches and the shared L2.
"""

from __future__ import annotations

from typing import Dict, List


class Cache:
    """A tag-only, set-associative, LRU cache.

    Parameters
    ----------
    name:
        Label used in statistics (e.g. ``"L1D(core3)"``).
    size_words / line_words / ways:
        Geometry; the number of sets is derived and must be a power of two
        free positive integer (any positive integer works, sets are selected
        by modulo).
    """

    __slots__ = ("name", "line_words", "ways", "num_sets", "_sets", "_tick",
                 "hits", "misses", "write_hits", "write_misses", "fills", "evictions")

    def __init__(self, name: str, size_words: int, line_words: int, ways: int):
        if size_words <= 0 or line_words <= 0 or ways <= 0:
            raise ValueError("cache geometry values must be positive")
        if size_words % (line_words * ways) != 0:
            raise ValueError("size_words must be a multiple of line_words * ways")
        self.name = name
        self.line_words = line_words
        self.ways = ways
        self.num_sets = size_words // (line_words * ways)
        # Each set maps line_address -> last-use tick.  Dict insertion order
        # doubles as the LRU order: every touch re-inserts the line at the
        # end, so the victim is always the first key -- O(1) eviction with
        # exactly the semantics of a min-scan over the ticks.
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self.write_hits = 0
        self.write_misses = 0
        self.fills = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def line_address(self, word_address: int) -> int:
        """Cache-line index containing ``word_address``."""
        return word_address // self.line_words

    def _set_for(self, line_address: int) -> Dict[int, int]:
        return self._sets[line_address % self.num_sets]

    def lookup(self, line_address: int) -> bool:
        """Return True if the line is resident (updates LRU state on hit)."""
        self._tick += 1
        entry = self._set_for(line_address)
        if line_address in entry:
            del entry[line_address]          # move to the LRU tail
            entry[line_address] = self._tick
            return True
        return False

    def fill(self, line_address: int) -> None:
        """Insert a line, evicting the LRU line of its set if necessary."""
        self._tick += 1
        entry = self._set_for(line_address)
        if line_address in entry:
            del entry[line_address]          # move to the LRU tail
            entry[line_address] = self._tick
            return
        if len(entry) >= self.ways:
            del entry[next(iter(entry))]     # first key = least recently used
            self.evictions += 1
        entry[line_address] = self._tick
        self.fills += 1

    # ------------------------------------------------------------------ convenience
    def access(self, line_address: int, write: bool = False, allocate_on_miss: bool = True) -> bool:
        """One timing access; returns hit/miss and maintains statistics.

        Reads allocate on miss by default (``allocate_on_miss``); writes are
        write-through and never allocate (Vortex-style L1 behaviour), they only
        refresh LRU state on hit.
        """
        hit = self.lookup(line_address)
        if write:
            if hit:
                self.write_hits += 1
            else:
                self.write_misses += 1
            return hit
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            if allocate_on_miss:
                self.fill(line_address)
        return hit

    def reset_statistics(self) -> None:
        """Zero all counters but keep cache contents."""
        self.hits = self.misses = 0
        self.write_hits = self.write_misses = 0
        self.fills = self.evictions = 0

    def invalidate(self) -> None:
        """Drop every resident line (used between independent launches)."""
        for entry in self._sets:
            entry.clear()

    @property
    def resident_lines(self) -> int:
        """Number of lines currently resident (for tests)."""
        return sum(len(entry) for entry in self._sets)

    @property
    def hit_rate(self) -> float:
        """Read hit rate."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
