"""Memory subsystem of the simulated GPU.

* :class:`~repro.sim.memory.mainmem.MainMemory` -- the word-addressed backing
  store holding real data (so kernel results can be checked against numpy).
* :class:`~repro.sim.memory.cache.Cache` -- a set-associative, LRU, tag-only
  cache model used for both the per-core L1s and the shared L2.
* :class:`~repro.sim.memory.dram.DramModel` -- latency + bandwidth-limited
  DRAM back end.
* :class:`~repro.sim.memory.coalescer.coalesce` -- groups per-lane word
  addresses into unique cache-line requests.
* :class:`~repro.sim.memory.hierarchy.MemoryHierarchy` -- ties L1s, the L2 and
  DRAM together and produces per-access latencies.
"""

from repro.sim.memory.cache import Cache
from repro.sim.memory.coalescer import coalesce
from repro.sim.memory.dram import DramModel
from repro.sim.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.sim.memory.mainmem import MainMemory, MemoryError_

__all__ = [
    "AccessResult",
    "Cache",
    "DramModel",
    "MainMemory",
    "MemoryError_",
    "MemoryHierarchy",
    "coalesce",
]
