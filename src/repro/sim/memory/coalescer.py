"""Memory-access coalescing.

A SIMT memory instruction produces one address per active lane.  The load/store
unit merges addresses that fall into the same cache line into a single request,
exactly like the coalescing stage of real GPUs; the number of resulting line
requests determines how many cache accesses (and potential misses) the warp
pays for.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def coalesce(word_addresses: Sequence[int], line_words: int) -> "List[Tuple[int, List[int]]]":
    """Group per-lane word addresses into unique cache-line requests.

    Returns a list of ``(line_address, lanes)`` tuples in first-appearance
    order, where ``lanes`` lists the positions in ``word_addresses`` that
    access the line.
    """
    if line_words <= 0:
        raise ValueError("line_words must be positive")
    lines: Dict[int, List[int]] = {}
    order: List[int] = []
    for lane, address in enumerate(word_addresses):
        line = address // line_words
        if line not in lines:
            lines[line] = []
            order.append(line)
        lines[line].append(lane)
    return [(line, lines[line]) for line in order]


def coalescing_factor(word_addresses: Sequence[int], line_words: int) -> float:
    """Average lanes served per line request (1.0 = fully divergent, lanes = perfect)."""
    if not word_addresses:
        return 0.0
    return len(word_addresses) / len(coalesce(word_addresses, line_words))
