"""Memory hierarchy: per-core L1 data caches, shared L2, DRAM.

The hierarchy answers a single question for the core model: *how long does
this cache-line request take?*  Loads walk L1 -> L2 -> DRAM, filling on the
way back; stores are write-through (they update LRU state and consume DRAM
bandwidth but never stall the issuing warp, which matches the write-buffer
behaviour of small GPU cores).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.config import ArchConfig
from repro.sim.memory.cache import Cache
from repro.sim.memory.dram import DramModel


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache-line request."""

    latency: int          # cycles until the data is available to the warp
    level: str            # "l1", "l2" or "dram" -- where the request was served
    queue_cycles: int = 0  # cycles spent waiting for DRAM bandwidth


class MemoryHierarchy:
    """Shared memory system of one simulated GPU."""

    def __init__(self, config: ArchConfig):
        self.config = config
        self.l1: List[Cache] = [
            Cache(f"L1D(core{core})", config.l1_size_words, config.l1_line_words, config.l1_ways)
            for core in range(config.cores)
        ]
        self.l2 = Cache("L2", config.l2_size_words, config.l2_line_words, config.l2_ways)
        self.dram = DramModel(config.dram_latency, config.dram_lines_per_cycle)

    # ------------------------------------------------------------------
    @property
    def line_words(self) -> int:
        """Cache-line size in words (L1 and L2 share it)."""
        return self.config.l1_line_words

    def load_line(self, core_id: int, line_address: int, now: int) -> AccessResult:
        """Timing of a load request for ``line_address`` issued by ``core_id`` at ``now``."""
        l1 = self.l1[core_id]
        if l1.access(line_address, write=False):
            return AccessResult(latency=self.config.l1_hit_latency, level="l1")
        if self.l2.access(line_address, write=False):
            latency = self.config.l1_hit_latency + self.config.l2_hit_latency
            return AccessResult(latency=latency, level="l2")
        completion = self.dram.access(now)
        queue = max(0, completion - now - self.config.dram_latency)
        latency = (self.config.l1_hit_latency + self.config.l2_hit_latency
                   + (completion - now))
        return AccessResult(latency=latency, level="dram", queue_cycles=queue)

    def store_line(self, core_id: int, line_address: int, now: int) -> AccessResult:
        """Timing bookkeeping of a write-through store (never stalls the warp)."""
        l1 = self.l1[core_id]
        l1.access(line_address, write=True)
        self.l2.access(line_address, write=True)
        # The write still travels to DRAM and consumes bandwidth.
        self.dram.access(now)
        return AccessResult(latency=1, level="store")

    # ------------------------------------------------------------------ fast paths
    # Same state transitions and statistics as load_line/store_line, with the
    # per-level Cache.access/lookup call chain inlined and the per-line loop
    # batched into one call.  Used by the fast engine; equivalence is covered
    # by the differential and golden suites.

    def load_lines_fast(self, core_id: int, lines, now: int) -> int:
        """Batched :meth:`load_line` over coalesced ``lines``; returns the
        warp's load latency (max arrival across the line requests, floor 1).

        Line ``index`` is issued at ``now + index`` and arrives at
        ``index + its latency`` -- the same arithmetic as the reference
        core's per-line loop.  ``lines`` is any iterable of line indices in
        request order (the fast engine passes its dedup dict).
        """
        config = self.config
        l1 = self.l1[core_id]
        l1_sets = l1._sets
        l1_num_sets = l1.num_sets
        l1_latency = config.l1_hit_latency
        l2_latency = l1_latency + config.l2_hit_latency
        latency = 1
        for index, line_address in enumerate(lines):
            l1._tick += 1
            entry = l1_sets[line_address % l1_num_sets]
            if line_address in entry:
                del entry[line_address]      # move to the LRU tail
                entry[line_address] = l1._tick
                l1.hits += 1
                arrival = index + l1_latency
            else:
                l1.misses += 1
                l1.fill(line_address)
                l2 = self.l2
                l2._tick += 1
                entry = l2._sets[line_address % l2.num_sets]
                if line_address in entry:
                    del entry[line_address]  # move to the LRU tail
                    entry[line_address] = l2._tick
                    l2.hits += 1
                    arrival = index + l2_latency
                else:
                    l2.misses += 1
                    l2.fill(line_address)
                    completion = self.dram.access(now + index)
                    arrival = index + l2_latency + (completion - now - index)
            if arrival > latency:
                latency = arrival
        return latency

    def store_lines_fast(self, core_id: int, lines, now: int) -> None:
        """Batched :meth:`store_line` over coalesced ``lines`` (line ``index``
        issued at ``now + index``, write-through, never stalls the warp)."""
        l1 = self.l1[core_id]
        l1_sets = l1._sets
        l1_num_sets = l1.num_sets
        l2 = self.l2
        l2_sets = l2._sets
        l2_num_sets = l2.num_sets
        dram = self.dram
        for index, line_address in enumerate(lines):
            l1._tick += 1
            entry = l1_sets[line_address % l1_num_sets]
            if line_address in entry:
                del entry[line_address]      # move to the LRU tail
                entry[line_address] = l1._tick
                l1.write_hits += 1
            else:
                l1.write_misses += 1
            l2._tick += 1
            entry = l2_sets[line_address % l2_num_sets]
            if line_address in entry:
                del entry[line_address]      # move to the LRU tail
                entry[line_address] = l2._tick
                l2.write_hits += 1
            else:
                l2.write_misses += 1
            dram.access(now + index)

    def load_round_fast(self, core_id: int, lines, out, order, now: int) -> None:
        """One single-line load per warp of a streamed batch round.

        Warp slot ``k`` requests ``lines[k]`` at ``now + k``; its latency
        (relative to its own issue cycle, so ``index`` is always 0) lands in
        ``out[order[k]]``.  State transitions and statistics are exactly one
        :meth:`load_lines_fast` call per warp, with the per-warp call overhead
        hoisted out of the loop.
        """
        config = self.config
        l1 = self.l1[core_id]
        l1_sets = l1._sets
        l1_num_sets = l1.num_sets
        l1_latency = config.l1_hit_latency
        l2_latency = l1_latency + config.l2_hit_latency
        l2 = self.l2
        l2_sets = l2._sets
        l2_num_sets = l2.num_sets
        dram = self.dram
        for k, line_address in enumerate(lines):
            l1._tick += 1
            entry = l1_sets[line_address % l1_num_sets]
            if line_address in entry:
                del entry[line_address]      # move to the LRU tail
                entry[line_address] = l1._tick
                l1.hits += 1
                arrival = l1_latency
            else:
                l1.misses += 1
                l1.fill(line_address)
                l2._tick += 1
                entry = l2_sets[line_address % l2_num_sets]
                if line_address in entry:
                    del entry[line_address]  # move to the LRU tail
                    entry[line_address] = l2._tick
                    l2.hits += 1
                    arrival = l2_latency
                else:
                    l2.misses += 1
                    l2.fill(line_address)
                    completion = dram.access(now + k)
                    arrival = l2_latency + (completion - now - k)
            out[order[k]] = arrival if arrival > 1 else 1

    def store_round_fast(self, core_id: int, lines, now: int) -> None:
        """One single-line write-through store per warp of a streamed batch
        round (slot ``k`` at ``now + k``); see :meth:`store_lines_fast`."""
        l1 = self.l1[core_id]
        l1_sets = l1._sets
        l1_num_sets = l1.num_sets
        l2 = self.l2
        l2_sets = l2._sets
        l2_num_sets = l2.num_sets
        dram = self.dram
        for k, line_address in enumerate(lines):
            l1._tick += 1
            entry = l1_sets[line_address % l1_num_sets]
            if line_address in entry:
                del entry[line_address]      # move to the LRU tail
                entry[line_address] = l1._tick
                l1.write_hits += 1
            else:
                l1.write_misses += 1
            l2._tick += 1
            entry = l2_sets[line_address % l2_num_sets]
            if line_address in entry:
                del entry[line_address]      # move to the LRU tail
                entry[line_address] = l2._tick
                l2.write_hits += 1
            else:
                l2.write_misses += 1
            dram.access(now + k)

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all cached lines and reset DRAM queue state (between launches)."""
        for cache in self.l1:
            cache.invalidate()
            cache.reset_statistics()
        self.l2.invalidate()
        self.l2.reset_statistics()
        self.dram.reset()

    def statistics(self) -> Dict[str, int]:
        """Aggregate cache/DRAM counters for :class:`~repro.sim.stats.PerfCounters`."""
        l1_hits = sum(c.hits for c in self.l1)
        l1_misses = sum(c.misses for c in self.l1)
        return {
            "l1_hits": l1_hits,
            "l1_misses": l1_misses,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
            "dram_lines": self.dram.lines_transferred,
            "dram_queue_cycles": self.dram.total_queue_cycles,
        }
