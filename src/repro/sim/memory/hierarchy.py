"""Memory hierarchy: per-core L1 data caches, shared L2, DRAM.

The hierarchy answers a single question for the core model: *how long does
this cache-line request take?*  Loads walk L1 -> L2 -> DRAM, filling on the
way back; stores are write-through (they update LRU state and consume DRAM
bandwidth but never stall the issuing warp, which matches the write-buffer
behaviour of small GPU cores).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.sim.config import ArchConfig
from repro.sim.memory.cache import Cache
from repro.sim.memory.dram import DramModel


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache-line request."""

    latency: int          # cycles until the data is available to the warp
    level: str            # "l1", "l2" or "dram" -- where the request was served
    queue_cycles: int = 0  # cycles spent waiting for DRAM bandwidth


class MemoryHierarchy:
    """Shared memory system of one simulated GPU."""

    def __init__(self, config: ArchConfig):
        self.config = config
        self.l1: List[Cache] = [
            Cache(f"L1D(core{core})", config.l1_size_words, config.l1_line_words, config.l1_ways)
            for core in range(config.cores)
        ]
        self.l2 = Cache("L2", config.l2_size_words, config.l2_line_words, config.l2_ways)
        self.dram = DramModel(config.dram_latency, config.dram_lines_per_cycle)

    # ------------------------------------------------------------------
    @property
    def line_words(self) -> int:
        """Cache-line size in words (L1 and L2 share it)."""
        return self.config.l1_line_words

    def load_line(self, core_id: int, line_address: int, now: int) -> AccessResult:
        """Timing of a load request for ``line_address`` issued by ``core_id`` at ``now``."""
        l1 = self.l1[core_id]
        if l1.access(line_address, write=False):
            return AccessResult(latency=self.config.l1_hit_latency, level="l1")
        if self.l2.access(line_address, write=False):
            latency = self.config.l1_hit_latency + self.config.l2_hit_latency
            return AccessResult(latency=latency, level="l2")
        completion = self.dram.access(now)
        queue = max(0, completion - now - self.config.dram_latency)
        latency = (self.config.l1_hit_latency + self.config.l2_hit_latency
                   + (completion - now))
        return AccessResult(latency=latency, level="dram", queue_cycles=queue)

    def store_line(self, core_id: int, line_address: int, now: int) -> AccessResult:
        """Timing bookkeeping of a write-through store (never stalls the warp)."""
        l1 = self.l1[core_id]
        l1.access(line_address, write=True)
        self.l2.access(line_address, write=True)
        # The write still travels to DRAM and consumes bandwidth.
        self.dram.access(now)
        return AccessResult(latency=1, level="store")

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop all cached lines and reset DRAM queue state (between launches)."""
        for cache in self.l1:
            cache.invalidate()
            cache.reset_statistics()
        self.l2.invalidate()
        self.l2.reset_statistics()
        self.dram.reset()

    def statistics(self) -> Dict[str, int]:
        """Aggregate cache/DRAM counters for :class:`~repro.sim.stats.PerfCounters`."""
        l1_hits = sum(c.hits for c in self.l1)
        l1_misses = sum(c.misses for c in self.l1)
        return {
            "l1_hits": l1_hits,
            "l1_misses": l1_misses,
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
            "dram_lines": self.dram.lines_transferred,
            "dram_queue_cycles": self.dram.total_queue_cycles,
        }
