"""Kernel abstraction.

A :class:`Kernel` is the DSL equivalent of an OpenCL kernel: a name, a
signature and a body function describing the work of a single work-item.  The
body receives the builder, the work-item's flattened global id and a mapping
from parameter name to :class:`~repro.kernels.values.Value` (buffer base
addresses and scalar arguments already loaded from the argument CSRs).

Kernels do not know anything about the local work size: the runtime wraps the
body in the Vortex/POCL workgroup loop (see
:func:`repro.kernels.wrapper.build_workgroup_program`), which is exactly the
mechanism whose parameters the paper optimises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.kernels.builder import KernelBuilder
from repro.kernels.signature import BufferParam, KernelParam, ScalarParam, validate_signature
from repro.kernels.values import Value

#: Signature of a kernel body: ``body(builder, gid, args)``.
KernelBody = Callable[[KernelBuilder, Value, Mapping[str, Value]], None]


class KernelArgumentError(ValueError):
    """Raised when host-side arguments do not match a kernel's signature."""


@dataclass(frozen=True)
class Kernel:
    """A device kernel: name, parameters and per-work-item body.

    Parameters
    ----------
    name:
        Unique kernel name (used by the registry and in traces).
    params:
        Ordered parameter declarations.
    body:
        Function emitting the per-work-item computation.
    description:
        One-line human readable description (used in reports).
    tags:
        Free-form labels, e.g. ``("math",)`` or ``("ml", "gcn")`` -- the
        experiment harness groups kernels by these the way the paper groups
        "math kernels" vs ML layers.
    """

    name: str
    params: Tuple[KernelParam, ...]
    body: KernelBody
    description: str = ""
    tags: Tuple[str, ...] = ()

    def __post_init__(self):
        validate_signature(self.params)

    # ------------------------------------------------------------------
    @property
    def buffer_params(self) -> Tuple[BufferParam, ...]:
        """Buffer parameters in declaration order."""
        return tuple(p for p in self.params if isinstance(p, BufferParam))

    @property
    def scalar_params(self) -> Tuple[ScalarParam, ...]:
        """Scalar parameters in declaration order."""
        return tuple(p for p in self.params if isinstance(p, ScalarParam))

    def param_slot(self, name: str) -> int:
        """Argument-CSR slot of parameter ``name``."""
        for slot, param in enumerate(self.params):
            if param.name == name:
                return slot
        raise KernelArgumentError(f"kernel {self.name!r} has no parameter {name!r}")

    def check_arguments(self, arguments: Mapping[str, object]) -> None:
        """Validate that ``arguments`` provides every declared parameter.

        Raises :class:`KernelArgumentError` listing missing or unexpected
        names so host code gets an actionable message.
        """
        expected = {p.name for p in self.params}
        provided = set(arguments)
        missing = sorted(expected - provided)
        unexpected = sorted(provided - expected)
        if missing or unexpected:
            raise KernelArgumentError(
                f"kernel {self.name!r}: missing arguments {missing}, unexpected {unexpected}"
            )

    # ------------------------------------------------------------------
    def emit_argument_loads(self, builder: KernelBuilder) -> Dict[str, Value]:
        """Read every parameter from the argument CSR window.

        Returns a mapping from parameter name to the loaded value; called by
        the workgroup wrapper before entering the work-item loop so arguments
        are read once per kernel call rather than once per work-item.
        """
        values: Dict[str, Value] = {}
        for slot, param in enumerate(self.params):
            values[param.name] = builder.kernel_arg(slot, dtype=param.dtype)
        return values

    def emit_body(self, builder: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
        """Emit the per-work-item computation into ``builder``."""
        self.body(builder, gid, args)

    def __str__(self) -> str:  # pragma: no cover - convenience
        params = ", ".join(f"{type(p).__name__}({p.name})" for p in self.params)
        return f"Kernel({self.name}: {params})"
