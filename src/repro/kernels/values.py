"""SSA-style value handles used by the kernel builder.

A :class:`Value` wraps a virtual register together with its element type
(``"i"`` for integers, ``"f"`` for floats) and the builder that created it.
Arithmetic and comparison operators emit instructions into the owning builder,
so kernels read like ordinary Python arithmetic::

    y = a * x + b          # emits MUL/FMA + ADD depending on dtypes
    inside = gid < n       # emits SLT producing a 0/1 integer value
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernels.builder import KernelBuilder

Number = Union[int, float]

INT = "i"
FLOAT = "f"


class Value:
    """A handle to a virtual register with a known element type."""

    __slots__ = ("builder", "reg", "dtype")

    def __init__(self, builder: "KernelBuilder", reg: int, dtype: str):
        if dtype not in (INT, FLOAT):
            raise ValueError(f"dtype must be 'i' or 'f', got {dtype!r}")
        self.builder = builder
        self.reg = reg
        self.dtype = dtype

    # ------------------------------------------------------------ helpers
    def _coerce(self, other: Union["Value", Number]) -> "Value":
        if isinstance(other, Value):
            return other
        return self.builder.const(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Value(r{self.reg}:{self.dtype})"

    # ------------------------------------------------------------ arithmetic
    def __add__(self, other): return self.builder.add(self, self._coerce(other))
    def __radd__(self, other): return self.builder.add(self._coerce(other), self)
    def __sub__(self, other): return self.builder.sub(self, self._coerce(other))
    def __rsub__(self, other): return self.builder.sub(self._coerce(other), self)
    def __mul__(self, other): return self.builder.mul(self, self._coerce(other))
    def __rmul__(self, other): return self.builder.mul(self._coerce(other), self)
    def __truediv__(self, other): return self.builder.div(self, self._coerce(other))
    def __rtruediv__(self, other): return self.builder.div(self._coerce(other), self)
    def __floordiv__(self, other): return self.builder.idiv(self, self._coerce(other))
    def __rfloordiv__(self, other): return self.builder.idiv(self._coerce(other), self)
    def __mod__(self, other): return self.builder.rem(self, self._coerce(other))
    def __rmod__(self, other): return self.builder.rem(self._coerce(other), self)
    def __neg__(self): return self.builder.neg(self)

    # ------------------------------------------------------------ comparisons
    def __lt__(self, other): return self.builder.lt(self, self._coerce(other))
    def __le__(self, other): return self.builder.le(self, self._coerce(other))
    def __gt__(self, other): return self.builder.lt(self._coerce(other), self)
    def __ge__(self, other): return self.builder.le(self._coerce(other), self)

    def eq(self, other) -> "Value":
        """Equality comparison producing a 0/1 integer value.

        ``__eq__`` is intentionally not overloaded so Values keep normal
        hashing/identity semantics inside Python containers.
        """
        return self.builder.cmp_eq(self, self._coerce(other))

    def ne(self, other) -> "Value":
        """Inequality comparison producing a 0/1 integer value."""
        return self.builder.cmp_ne(self, self._coerce(other))

    # ------------------------------------------------------------ conversions
    def to_float(self) -> "Value":
        """Convert to a float value (no-op if already float)."""
        return self.builder.to_float(self)

    def to_int(self) -> "Value":
        """Truncate to an integer value (no-op if already int)."""
        return self.builder.to_int(self)
