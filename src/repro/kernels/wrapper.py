"""Workgroup wrapper: the POCL-style loop around a kernel body.

On Vortex the POCL compiler emits a *workgroup function*: each hardware thread
receives one workgroup and loops over its ``local_work_size`` work-items.  The
``lws`` value therefore "determines the iterations each thread loops around
the kernel" (paper, Section 2).  :func:`build_workgroup_program` reproduces
that structure:

.. code-block:: text

    init:   read CSRs (workgroup id, iteration count, lws, gws), load arguments
    index:  first_gid = workgroup_id * lws
    loop:   for i in range(local_count):          # LOOP_BEGIN / LOOP_END
    index:      gid = first_gid + i
    body:       <kernel body>                     # the per-work-item code
    loop:       i += 1; continue while i < count
    exit:   halt

The same program is reused for every launch of a kernel: the lws, the
workgroup assignment and the per-lane iteration count arrive through CSRs, so
changing the mapping never requires recompilation -- this is what makes the
paper's *runtime* lws selection possible.
"""

from __future__ import annotations

from typing import Dict

from repro.isa.program import Program
from repro.isa.registers import Csr
from repro.kernels.builder import KernelBuilder
from repro.kernels.kernel import Kernel

# Section tags used by the wrapper; kernels may introduce extra tags inside
# their body (e.g. "load", "mac") which simply nest under "body".
SECTION_INIT = "init"
SECTION_INDEX = "index"
SECTION_BODY = "body"
SECTION_LOOP = "loop"
SECTION_EXIT = "exit"

_WRAPPER_CACHE: Dict[str, Program] = {}


def build_workgroup_program(kernel: Kernel, use_cache: bool = True) -> Program:
    """Build (or fetch from cache) the executable workgroup program of ``kernel``.

    The program is mapping-agnostic: every mapping parameter is read from CSRs
    at run time, so a single compiled program serves every (gws, lws, hardware)
    combination.
    """
    if use_cache and kernel.name in _WRAPPER_CACHE:
        return _WRAPPER_CACHE[kernel.name]

    builder = KernelBuilder(f"{kernel.name}_wg")
    with builder.section(SECTION_INIT):
        args = kernel.emit_argument_loads(builder)
        local_count = builder.csr(Csr.LOCAL_COUNT)
        lws = builder.csr(Csr.LOCAL_SIZE)
        workgroup_id = builder.csr(Csr.WORKGROUP_ID)

    with builder.section(SECTION_INDEX):
        first_gid = workgroup_id * lws

    with builder.section(SECTION_LOOP):
        loop = builder.for_range(local_count, guard=True)
        local_index = loop.__enter__()
    try:
        with builder.section(SECTION_INDEX):
            gid = first_gid + local_index
        with builder.section(SECTION_BODY):
            kernel.emit_body(builder, gid, args)
    finally:
        with builder.section(SECTION_LOOP):
            loop.__exit__(None, None, None)

    with builder.section(SECTION_EXIT):
        builder.halt()

    program = builder.link(metadata={"kernel": kernel.name, "wrapper": "workgroup-loop"})
    if use_cache:
        _WRAPPER_CACHE[kernel.name] = program
    return program


def clear_wrapper_cache() -> None:
    """Drop all cached workgroup programs (mainly useful in tests)."""
    _WRAPPER_CACHE.clear()
