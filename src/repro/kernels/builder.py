"""Kernel builder: a small structured-programming DSL that emits SIMT IR.

The builder stands in for OpenCL C plus the POCL compiler of the original
Vortex flow.  A kernel body is ordinary Python code driving a
:class:`KernelBuilder`; every arithmetic operation, memory access and control
construct appends instructions to the builder, and :meth:`KernelBuilder.link`
produces an executable :class:`~repro.isa.program.Program`.

Control flow is *structured*: divergence is expressed through ``if_`` /
``if_then_else`` (mapped to the ISA's SPLIT/JOIN pair) and counted loops
through ``for_range`` (mapped to LOOP_BEGIN/LOOP_END), exactly the constructs
Vortex's split/join thread-mask instructions support.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import Csr, NUM_ARG_SLOTS
from repro.kernels.values import FLOAT, INT, Number, Value


class BuildError(RuntimeError):
    """Raised when a kernel body uses the builder incorrectly."""


class KernelBuilder:
    """Accumulates instructions for one kernel (or workgroup wrapper).

    The builder tracks the current semantic *section* tag; every emitted
    instruction is stamped with it so traces can be annotated the way the
    paper's Figure 1 annotates them.
    """

    def __init__(self, name: str):
        self.name = name
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._next_register = 0
        self._next_label = 0
        self._section_stack: List[str] = ["body"]
        # Constant reuse is scoped to structured control regions: a constant
        # materialised inside an if/loop body may only be reused while that
        # region is still open, otherwise lanes that skipped the region would
        # read an unwritten register.
        self._const_cache: Dict[tuple, Value] = {}
        self._region_consts: List[List[tuple]] = [[]]

    # ------------------------------------------------------------------
    # low-level emission
    # ------------------------------------------------------------------
    @property
    def current_section(self) -> str:
        """Section tag applied to the next emitted instruction."""
        return self._section_stack[-1]

    def emit(self, instruction: Instruction) -> int:
        """Append ``instruction`` (stamped with the current section); return its index."""
        self._instructions.append(instruction.with_section(self.current_section))
        return len(self._instructions) - 1

    def new_register(self) -> int:
        """Allocate a fresh virtual register index."""
        reg = self._next_register
        self._next_register += 1
        return reg

    def new_value(self, dtype: str) -> Value:
        """Allocate a fresh register wrapped in a :class:`Value`."""
        return Value(self, self.new_register(), dtype)

    def new_label(self, hint: str = "L") -> str:
        """Return a fresh, unique label name."""
        self._next_label += 1
        return f"{hint}_{self._next_label}"

    def place_label(self, label: str) -> None:
        """Bind ``label`` to the next instruction to be emitted."""
        if label in self._labels:
            raise BuildError(f"label {label!r} already placed")
        self._labels[label] = len(self._instructions)

    @contextlib.contextmanager
    def section(self, name: str):
        """Tag every instruction emitted inside the ``with`` block with ``name``."""
        self._section_stack.append(name)
        try:
            yield
        finally:
            self._section_stack.pop()

    # ------------------------------------------------------------------
    # constants, CSRs and kernel arguments
    # ------------------------------------------------------------------
    def const(self, value: Number, dtype: Optional[str] = None) -> Value:
        """Materialise a constant.

        Repeated requests for the same constant reuse one register as long as
        the original definition is still in scope (same or enclosing control
        region).
        """
        if dtype is None:
            dtype = INT if isinstance(value, int) and not isinstance(value, bool) else FLOAT
        key = (value, dtype)
        cached = self._const_cache.get(key)
        if cached is not None:
            return cached
        dst = self.new_value(dtype)
        self.emit(Instruction(Opcode.LI, dst=dst.reg, imm=value, comment=f"const {value}"))
        self._const_cache[key] = dst
        self._region_consts[-1].append(key)
        return dst

    def _push_region(self) -> None:
        self._region_consts.append([])

    def _pop_region(self) -> None:
        for key in self._region_consts.pop():
            self._const_cache.pop(key, None)

    def csr(self, csr: Union[Csr, int], dtype: str = INT) -> Value:
        """Read a control/status register into a fresh value."""
        dst = self.new_value(dtype)
        name = csr.name if isinstance(csr, Csr) else f"0x{int(csr):x}"
        self.emit(Instruction(Opcode.CSRR, dst=dst.reg, imm=int(csr), comment=f"csr {name}"))
        return dst

    def kernel_arg(self, slot: int, dtype: str) -> Value:
        """Read scalar-argument ``slot`` (buffer base addresses are integers)."""
        if not (0 <= slot < NUM_ARG_SLOTS):
            raise BuildError(f"kernel argument slot {slot} out of range")
        return self.csr(int(Csr.ARG_BASE) + slot, dtype=dtype)

    # ------------------------------------------------------------------
    # type handling
    # ------------------------------------------------------------------
    def to_float(self, value: Value) -> Value:
        if value.dtype == FLOAT:
            return value
        dst = self.new_value(FLOAT)
        self.emit(Instruction(Opcode.I2F, dst=dst.reg, srcs=(value.reg,)))
        return dst

    def to_int(self, value: Value) -> Value:
        if value.dtype == INT:
            return value
        dst = self.new_value(INT)
        self.emit(Instruction(Opcode.F2I, dst=dst.reg, srcs=(value.reg,)))
        return dst

    def _binary(self, int_op: Opcode, float_op: Optional[Opcode], a: Value, b: Value,
                result_dtype: Optional[str] = None) -> Value:
        if a.dtype == INT and b.dtype == INT:
            op, dtype = int_op, INT
        else:
            if float_op is None:
                raise BuildError(f"{int_op.name} is integer-only")
            a, b = self.to_float(a), self.to_float(b)
            op, dtype = float_op, FLOAT
        dst = self.new_value(result_dtype or dtype)
        self.emit(Instruction(op, dst=dst.reg, srcs=(a.reg, b.reg)))
        return dst

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def add(self, a: Value, b: Value) -> Value:
        return self._binary(Opcode.ADD, Opcode.FADD, a, b)

    def sub(self, a: Value, b: Value) -> Value:
        return self._binary(Opcode.SUB, Opcode.FSUB, a, b)

    def mul(self, a: Value, b: Value) -> Value:
        return self._binary(Opcode.MUL, Opcode.FMUL, a, b)

    def div(self, a: Value, b: Value) -> Value:
        """True division.  Integer operands use the integer divider."""
        return self._binary(Opcode.DIV, Opcode.FDIV, a, b)

    def idiv(self, a: Value, b: Value) -> Value:
        """Integer (floor) division; operands must be integers."""
        if a.dtype != INT or b.dtype != INT:
            raise BuildError("idiv requires integer operands")
        dst = self.new_value(INT)
        self.emit(Instruction(Opcode.DIV, dst=dst.reg, srcs=(a.reg, b.reg)))
        return dst

    def rem(self, a: Value, b: Value) -> Value:
        if a.dtype != INT or b.dtype != INT:
            raise BuildError("rem requires integer operands")
        dst = self.new_value(INT)
        self.emit(Instruction(Opcode.REM, dst=dst.reg, srcs=(a.reg, b.reg)))
        return dst

    def neg(self, a: Value) -> Value:
        op = Opcode.NEG if a.dtype == INT else Opcode.FNEG
        dst = self.new_value(a.dtype)
        self.emit(Instruction(op, dst=dst.reg, srcs=(a.reg,)))
        return dst

    def abs(self, a: Value) -> Value:
        op = Opcode.ABS if a.dtype == INT else Opcode.FABS
        dst = self.new_value(a.dtype)
        self.emit(Instruction(op, dst=dst.reg, srcs=(a.reg,)))
        return dst

    def fma(self, a: Value, b: Value, c: Value) -> Value:
        """Fused multiply-add: ``a * b + c`` in one floating-point instruction."""
        a, b, c = self.to_float(a), self.to_float(b), self.to_float(c)
        dst = self.new_value(FLOAT)
        self.emit(Instruction(Opcode.FMA, dst=dst.reg, srcs=(a.reg, b.reg, c.reg)))
        return dst

    def minimum(self, a: Value, b: Value) -> Value:
        return self._binary(Opcode.MIN, Opcode.FMIN, a, b)

    def maximum(self, a: Value, b: Value) -> Value:
        return self._binary(Opcode.MAX, Opcode.FMAX, a, b)

    def sqrt(self, a: Value) -> Value:
        a = self.to_float(a)
        dst = self.new_value(FLOAT)
        self.emit(Instruction(Opcode.FSQRT, dst=dst.reg, srcs=(a.reg,)))
        return dst

    def exp(self, a: Value) -> Value:
        a = self.to_float(a)
        dst = self.new_value(FLOAT)
        self.emit(Instruction(Opcode.FEXP, dst=dst.reg, srcs=(a.reg,)))
        return dst

    def log(self, a: Value) -> Value:
        a = self.to_float(a)
        dst = self.new_value(FLOAT)
        self.emit(Instruction(Opcode.FLOG, dst=dst.reg, srcs=(a.reg,)))
        return dst

    def shl(self, a: Value, b: Value) -> Value:
        return self._binary(Opcode.SHL, None, a, b)

    def shr(self, a: Value, b: Value) -> Value:
        return self._binary(Opcode.SHR, None, a, b)

    # ------------------------------------------------------------------
    # comparisons (always produce a 0/1 integer value)
    # ------------------------------------------------------------------
    def lt(self, a: Value, b: Value) -> Value:
        return self._binary(Opcode.SLT, Opcode.FLT, a, b, result_dtype=INT)

    def le(self, a: Value, b: Value) -> Value:
        return self._binary(Opcode.SLE, Opcode.FLE, a, b, result_dtype=INT)

    def cmp_eq(self, a: Value, b: Value) -> Value:
        return self._binary(Opcode.SEQ, Opcode.FEQ, a, b, result_dtype=INT)

    def cmp_ne(self, a: Value, b: Value) -> Value:
        if a.dtype == INT and b.dtype == INT:
            dst = self.new_value(INT)
            self.emit(Instruction(Opcode.SNE, dst=dst.reg, srcs=(a.reg, b.reg)))
            return dst
        eq = self.cmp_eq(a, b)
        one = self.const(1)
        return self.sub(one, eq)

    def logical_and(self, a: Value, b: Value) -> Value:
        """Logical AND of two 0/1 integer values."""
        return self._binary(Opcode.AND, None, self.to_int(a), self.to_int(b))

    def logical_or(self, a: Value, b: Value) -> Value:
        """Logical OR of two 0/1 integer values."""
        return self._binary(Opcode.OR, None, self.to_int(a), self.to_int(b))

    def select(self, cond: Value, when_true: Value, when_false: Value) -> Value:
        """Branch-free select: ``when_true`` where ``cond`` else ``when_false``.

        Implemented arithmetically (``f = false + cond * (true - false)``) so
        it costs no divergence.
        """
        cond_f = self.to_float(cond)
        t = self.to_float(when_true)
        f = self.to_float(when_false)
        diff = self.sub(t, f)
        return self.fma(cond_f, diff, f)

    # ------------------------------------------------------------------
    # data movement
    # ------------------------------------------------------------------
    def move(self, dst: Value, src: Value) -> None:
        """Copy ``src`` into ``dst``'s register (used for loop-carried values)."""
        src = self.to_float(src) if dst.dtype == FLOAT else self.to_int(src)
        self.emit(Instruction(Opcode.MOV, dst=dst.reg, srcs=(src.reg,)))

    def copy(self, src: Value) -> Value:
        """Return a fresh value holding a copy of ``src`` (a mutable accumulator)."""
        dst = self.new_value(src.dtype)
        self.emit(Instruction(Opcode.MOV, dst=dst.reg, srcs=(src.reg,)))
        return dst

    def load(self, base: Value, offset: Union[Value, Number] = 0, dtype: str = FLOAT) -> Value:
        """Load ``mem[base + offset]``; ``offset`` may be a constant immediate."""
        dst = self.new_value(dtype)
        if isinstance(offset, (int, float)) and float(offset).is_integer():
            self.emit(Instruction(Opcode.LOAD, dst=dst.reg, srcs=(base.reg,), imm=int(offset)))
        else:
            addr = self.add(self.to_int(base), self.to_int(self._as_value(offset)))
            self.emit(Instruction(Opcode.LOAD, dst=dst.reg, srcs=(addr.reg,), imm=0))
        return dst

    def store(self, value: Value, base: Value, offset: Union[Value, Number] = 0) -> None:
        """Store ``value`` into ``mem[base + offset]``."""
        if isinstance(offset, (int, float)) and float(offset).is_integer():
            self.emit(Instruction(Opcode.STORE, srcs=(value.reg, base.reg), imm=int(offset)))
        else:
            addr = self.add(self.to_int(base), self.to_int(self._as_value(offset)))
            self.emit(Instruction(Opcode.STORE, srcs=(value.reg, addr.reg), imm=0))

    def _as_value(self, value: Union[Value, Number]) -> Value:
        return value if isinstance(value, Value) else self.const(value)

    # ------------------------------------------------------------------
    # control flow
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def if_(self, cond: Value):
        """Execute the block only on lanes where ``cond`` is non-zero."""
        else_label = self.new_label("else")
        join_label = self.new_label("join")
        self.emit(Instruction(Opcode.SPLIT, srcs=(self.to_int(cond).reg,),
                              target=else_label, target2=join_label))
        self._push_region()
        try:
            yield
        finally:
            self._pop_region()
            self.emit(Instruction(Opcode.JOIN))
            self.place_label(else_label)
            self.emit(Instruction(Opcode.JOIN))
            self.place_label(join_label)

    def if_then_else(self, cond: Value,
                     then_fn: Callable[[], None],
                     else_fn: Optional[Callable[[], None]] = None) -> None:
        """Two-sided structured branch."""
        if else_fn is None:
            with self.if_(cond):
                then_fn()
            return
        else_label = self.new_label("else")
        join_label = self.new_label("join")
        self.emit(Instruction(Opcode.SPLIT, srcs=(self.to_int(cond).reg,),
                              target=else_label, target2=join_label))
        self._push_region()
        then_fn()
        self._pop_region()
        self.emit(Instruction(Opcode.JOIN))
        self.place_label(else_label)
        self._push_region()
        else_fn()
        self._pop_region()
        self.emit(Instruction(Opcode.JOIN))
        self.place_label(join_label)

    @contextlib.contextmanager
    def for_range(self, count: Union[Value, int], guard: bool = True):
        """Counted loop yielding the iteration index as an integer value.

        With ``guard=True`` (the default) a zero trip count skips the body;
        with ``guard=False`` the body executes at least once (cheaper when the
        caller knows the count is positive).
        """
        count_v = self._as_value(count)
        if count_v.dtype != INT:
            raise BuildError("for_range requires an integer trip count")
        index = self.new_value(INT)
        self.emit(Instruction(Opcode.LI, dst=index.reg, imm=0, comment="loop index"))
        if guard:
            zero = self.const(0)
            positive = self.lt(zero, count_v)
            split_else = self.new_label("skip")
            split_join = self.new_label("done")
            self.emit(Instruction(Opcode.SPLIT, srcs=(positive.reg,),
                                  target=split_else, target2=split_join))
        body_label = self.new_label("loop")
        self.emit(Instruction(Opcode.LOOP_BEGIN))
        self.place_label(body_label)
        self._push_region()
        try:
            yield index
        finally:
            one = self.const(1)
            self.emit(Instruction(Opcode.ADD, dst=index.reg, srcs=(index.reg, one.reg),
                                  comment="loop increment"))
            again = self.lt(index, count_v)
            self._pop_region()
            self.emit(Instruction(Opcode.LOOP_END, srcs=(again.reg,), target=body_label))
            if guard:
                self.emit(Instruction(Opcode.JOIN))
                self.place_label(split_else)
                self.emit(Instruction(Opcode.JOIN))
                self.place_label(split_join)

    def barrier(self) -> None:
        """Synchronise all warps of the core (Vortex ``bar`` instruction)."""
        self.emit(Instruction(Opcode.BAR))

    def halt(self) -> None:
        """Terminate the warp."""
        self.emit(Instruction(Opcode.HALT))

    def nop(self) -> None:
        """Emit a no-op (useful to pad sections in tests)."""
        self.emit(Instruction(Opcode.NOP))

    # ------------------------------------------------------------------
    # linking
    # ------------------------------------------------------------------
    def link(self, metadata: Optional[Dict[str, object]] = None) -> Program:
        """Resolve labels and return an executable :class:`Program`."""
        for label, pc in self._labels.items():
            if pc > len(self._instructions):
                raise BuildError(f"label {label!r} placed beyond the last instruction")
        # A label placed after the final instruction must land on something
        # executable; append a trailing HALT if needed.
        if any(pc == len(self._instructions) for pc in self._labels.values()):
            self.halt()
        return Program.link(
            name=self.name,
            instructions=self._instructions,
            labels=self._labels,
            num_registers=self._next_register,
            metadata=metadata,
        )

    @property
    def instruction_count(self) -> int:
        """Number of instructions emitted so far."""
        return len(self._instructions)
