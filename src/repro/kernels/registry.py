"""Kernel registry.

The experiment harness and the examples refer to kernels by name
(``"vecadd"``, ``"sgemm"``...); the registry is the single lookup point.
Library kernels register themselves at import time; user code can register
additional kernels with :func:`register_kernel`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.kernels.kernel import Kernel

_REGISTRY: Dict[str, Kernel] = {}


class UnknownKernelError(KeyError):
    """Raised when looking up a kernel name that was never registered."""


def register_kernel(kernel: Kernel, replace: bool = False) -> Kernel:
    """Add ``kernel`` to the registry and return it.

    Registering the same name twice raises unless ``replace=True``.
    """
    if kernel.name in _REGISTRY and not replace:
        raise ValueError(f"kernel {kernel.name!r} is already registered")
    _REGISTRY[kernel.name] = kernel
    return kernel


def get_kernel(name: str) -> Kernel:
    """Return the kernel registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise UnknownKernelError(f"unknown kernel {name!r}; known kernels: {known}") from None


def available_kernels(tag: str | None = None) -> List[str]:
    """Names of all registered kernels, optionally filtered by ``tag``."""
    if tag is None:
        return sorted(_REGISTRY)
    return sorted(name for name, kernel in _REGISTRY.items() if tag in kernel.tags)
