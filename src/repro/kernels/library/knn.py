"""Nearest-neighbour distance kernel (``knn``).

The paper's ``kNN 42764 pts`` workload is the Rodinia ``nn`` benchmark: every
work-item computes the Euclidean distance between one record (latitude /
longitude pair) and the query point; the host then selects the k smallest
distances.  One work-item handles one point::

    d[gid] = sqrt((lat[gid] - lat_q)^2 + (lng[gid] - lng_q)^2)
"""

from __future__ import annotations

from typing import Mapping

from repro.kernels.builder import KernelBuilder
from repro.kernels.kernel import Kernel
from repro.kernels.registry import register_kernel
from repro.kernels.signature import BufferParam, ScalarParam
from repro.kernels.values import FLOAT, Value


def _body(b: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
    with b.section("load"):
        lat = b.load(args["lat"], gid)
        lng = b.load(args["lng"], gid)
    with b.section("compute"):
        dlat = lat - args["lat_q"]
        dlng = lng - args["lng_q"]
        dist2 = b.fma(dlat, dlat, dlng * dlng)
        dist = b.sqrt(dist2)
    with b.section("store"):
        b.store(dist, args["dist"], gid)


def make_knn_kernel() -> Kernel:
    """Build the ``knn`` distance kernel (one point's distance per work-item)."""
    return Kernel(
        name="knn",
        params=(
            BufferParam("lat"),
            BufferParam("lng"),
            BufferParam("dist", writable=True),
            ScalarParam("lat_q", kind=FLOAT),
            ScalarParam("lng_q", kind=FLOAT),
        ),
        body=_body,
        description="nearest-neighbour Euclidean distance to a query point",
        tags=("math", "memory-bound", "irregular"),
    )


KNN = register_kernel(make_knn_kernel())
