"""Graph Convolutional Network kernels (``gcn_aggregate`` and ``gcn_layer``).

The paper evaluates two GCN workloads on the Cora citation graph with hidden
size 16:

* ``GCN aggr`` -- the sparse neighbourhood aggregation
  ``H'[v, f] = (X[v, f] + sum_{u in N(v)} X[u, f]) / (deg(v) + 1)``
  (mean aggregation over the self-augmented neighbourhood, the standard
  GCN normalisation simplification).
* ``GCN layer`` -- a full layer combining aggregation with the dense feature
  transform and ReLU:
  ``H'[v, o] = relu( sum_f agg(X)[v, f] * W[f, o] )``.

The graph is stored in CSR form (``row_ptr`` of length ``num_nodes + 1`` and
``col_idx`` of length ``num_edges``); feature matrices are row-major.
One work-item computes one (node, feature) output element.
"""

from __future__ import annotations

from typing import Mapping

from repro.kernels.builder import KernelBuilder
from repro.kernels.kernel import Kernel
from repro.kernels.registry import register_kernel
from repro.kernels.signature import BufferParam, ScalarParam
from repro.kernels.values import INT, Value


def _aggregate_into(b: KernelBuilder, args: Mapping[str, Value], node: Value, feat: Value) -> Value:
    """Emit code computing the mean-aggregated feature ``feat`` of ``node``."""
    hidden = args["hidden"]
    with b.section("load"):
        start = b.load(args["row_ptr"], node, dtype=INT)
        end = b.load(args["row_ptr"], node + 1, dtype=INT)
        self_feat = b.load(args["x"], node * hidden + feat)
    with b.section("compute"):
        degree = end - start
        acc = b.copy(self_feat)
        with b.for_range(degree, guard=True) as e:
            with b.section("load"):
                neighbour = b.load(args["col_idx"], start + e, dtype=INT)
                value = b.load(args["x"], neighbour * hidden + feat)
            with b.section("mac"):
                b.move(acc, acc + value)
        denom = b.to_float(degree + 1)
        mean = acc / denom
    return mean


def _aggregate_body(b: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
    hidden = args["hidden"]
    with b.section("index"):
        node = gid // hidden
        feat = gid % hidden
    mean = _aggregate_into(b, args, node, feat)
    with b.section("store"):
        b.store(mean, args["out"], gid)


def _layer_body(b: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
    hidden = args["hidden"]
    hidden_out = args["hidden_out"]
    with b.section("index"):
        node = gid // hidden_out
        out_feat = gid % hidden_out
    with b.section("compute"):
        acc = b.copy(b.const(0.0))
        with b.for_range(hidden, guard=False) as feat:
            mean = _aggregate_into(b, args, node, feat)
            with b.section("load"):
                weight = b.load(args["w"], feat * hidden_out + out_feat)
            with b.section("mac"):
                b.move(acc, b.fma(mean, weight, acc))
        activated = b.maximum(acc, b.const(0.0))
    with b.section("store"):
        b.store(activated, args["out"], gid)


def make_gcn_aggregate_kernel() -> Kernel:
    """Build the GCN mean-aggregation kernel (one (node, feature) per work-item)."""
    return Kernel(
        name="gcn_aggregate",
        params=(
            BufferParam("row_ptr"),
            BufferParam("col_idx"),
            BufferParam("x"),
            BufferParam("out", writable=True),
            ScalarParam("hidden", kind=INT),
        ),
        body=_aggregate_body,
        description="GCN mean aggregation over the self-augmented neighbourhood",
        tags=("ml", "gcn", "irregular"),
    )


def make_gcn_layer_kernel() -> Kernel:
    """Build the combined GCN layer kernel (aggregate + dense transform + ReLU)."""
    return Kernel(
        name="gcn_layer",
        params=(
            BufferParam("row_ptr"),
            BufferParam("col_idx"),
            BufferParam("x"),
            BufferParam("w"),
            BufferParam("out", writable=True),
            ScalarParam("hidden", kind=INT),
            ScalarParam("hidden_out", kind=INT),
        ),
        body=_layer_body,
        description="full GCN layer: mean aggregation, dense transform, ReLU",
        tags=("ml", "gcn", "irregular"),
    )


GCN_AGGREGATE = register_kernel(make_gcn_aggregate_kernel())
GCN_LAYER = register_kernel(make_gcn_layer_kernel())
