"""3x3 convolution + ReLU layer (``conv2d``) -- the ResNet20 workload.

The paper's ``ResNet20 CIFAR-10, 1 layer, ch. 16`` workload is a standard
3x3 same-padded convolution with 16 input and 16 output channels over a
32 x 32 feature map, followed by ReLU.  One work-item computes one output
element (a single (channel, y, x) position), so the flattened global work
size is ``out_channels * height * width``::

    oc = gid // (H * W); rest = gid % (H * W); y = rest // W; x = rest % W
    out[oc, y, x] = relu( sum_{ic, ky, kx} in[ic, y+ky-1, x+kx-1] * w[oc, ic, ky, kx] )

Out-of-image taps contribute zero (zero padding), implemented with a
branch-free validity mask so warps stay convergent.  Tensors are stored in
channel-major (CHW) row-major layout; weights are ``[oc, ic, ky, kx]``.
"""

from __future__ import annotations

from typing import Mapping

from repro.kernels.builder import KernelBuilder
from repro.kernels.kernel import Kernel
from repro.kernels.registry import register_kernel
from repro.kernels.signature import BufferParam, ScalarParam
from repro.kernels.values import INT, Value


def _body(b: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
    width = args["width"]
    height = args["height"]
    in_channels = args["in_channels"]
    with b.section("index"):
        plane = height * width
        oc = gid // plane
        rest = gid % plane
        y = rest // width
        x = rest % width
        zero = b.const(0)
        weight_base = oc * (in_channels * 9)
    with b.section("compute"):
        acc = b.copy(b.const(0.0))
        with b.for_range(in_channels, guard=False) as ic:
            with b.section("index"):
                in_plane_base = ic * plane
                w_channel_base = weight_base + ic * 9
            with b.for_range(9, guard=False) as tap:
                with b.section("index"):
                    dy = tap // 3 - 1
                    dx = tap % 3 - 1
                    ny = y + dy
                    nx = x + dx
                    # validity mask: 1 when the tap lands inside the image
                    valid_y = b.logical_and(zero <= ny, ny < height)
                    valid_x = b.logical_and(zero <= nx, nx < width)
                    valid = b.to_float(b.logical_and(valid_y, valid_x))
                    # clamp the address so masked-off taps still load in bounds
                    cy = b.minimum(b.maximum(ny, zero), height - 1)
                    cx = b.minimum(b.maximum(nx, zero), width - 1)
                    offset = in_plane_base + cy * width + cx
                with b.section("load"):
                    pixel = b.load(args["input"], offset)
                    weight = b.load(args["weights"], w_channel_base + tap)
                with b.section("mac"):
                    b.move(acc, b.fma(valid * pixel, weight, acc))
        activated = b.maximum(acc, b.const(0.0))
    with b.section("store"):
        b.store(activated, args["output"], gid)


def make_conv2d_kernel() -> Kernel:
    """Build the 3x3 conv + ReLU kernel (one output element per work-item)."""
    return Kernel(
        name="conv2d",
        params=(
            BufferParam("input"),
            BufferParam("weights"),
            BufferParam("output", writable=True),
            ScalarParam("width", kind=INT),
            ScalarParam("height", kind=INT),
            ScalarParam("in_channels", kind=INT),
        ),
        body=_body,
        description="3x3 same-padded convolution + ReLU (ResNet20 basic layer)",
        tags=("ml", "cnn", "compute-bound"),
    )


CONV2D = register_kernel(make_conv2d_kernel())
