"""Element-wise rectified linear unit (``relu``).

One of the Figure-2 math kernels (length 4096).  One work-item computes one
output element::

    out[gid] = max(in[gid], 0.0)
"""

from __future__ import annotations

from typing import Mapping

from repro.kernels.builder import KernelBuilder
from repro.kernels.kernel import Kernel
from repro.kernels.registry import register_kernel
from repro.kernels.signature import BufferParam
from repro.kernels.values import Value


def _body(b: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
    with b.section("load"):
        x = b.load(args["x"], gid)
    with b.section("compute"):
        zero = b.const(0.0)
        y = b.maximum(x, zero)
    with b.section("store"):
        b.store(y, args["y"], gid)


def make_relu_kernel() -> Kernel:
    """Build the ``relu`` kernel (y = max(x, 0), one element per work-item)."""
    return Kernel(
        name="relu",
        params=(
            BufferParam("x"),
            BufferParam("y", writable=True),
        ),
        body=_body,
        description="element-wise ReLU y[i] = max(x[i], 0)",
        tags=("math", "memory-bound"),
    )


RELU = register_kernel(make_relu_kernel())
