"""2D Gaussian blur filter (``gaussian``).

The paper evaluates a Gaussian filter on a 360 x 360 image.  One work-item
computes one output pixel by convolving a 3x3 Gaussian window around it;
border pixels clamp their neighbourhood to the image (replicate padding),
implemented branch-free with min/max so the kernel stays convergent::

    y = gid // width ; x = gid % width
    out[y, x] = sum_{dy,dx} w[dy,dx] * img[clamp(y+dy), clamp(x+dx)]
"""

from __future__ import annotations

from typing import Mapping

from repro.kernels.builder import KernelBuilder
from repro.kernels.kernel import Kernel
from repro.kernels.registry import register_kernel
from repro.kernels.signature import BufferParam, ScalarParam
from repro.kernels.values import INT, Value

#: 3x3 Gaussian weights (sigma ~ 0.85), normalised to sum to one.
GAUSSIAN_WEIGHTS = (
    1.0 / 16, 2.0 / 16, 1.0 / 16,
    2.0 / 16, 4.0 / 16, 2.0 / 16,
    1.0 / 16, 2.0 / 16, 1.0 / 16,
)


def _body(b: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
    width = args["width"]
    height = args["height"]
    with b.section("index"):
        y = gid // width
        x = gid % width
        zero = b.const(0)
        max_x = width - 1
        max_y = height - 1
    with b.section("compute"):
        acc = b.copy(b.const(0.0))
        with b.for_range(9, guard=False) as tap:
            with b.section("index"):
                dy = tap // 3 - 1
                dx = tap % 3 - 1
                ny = b.minimum(b.maximum(y + dy, zero), max_y)
                nx = b.minimum(b.maximum(x + dx, zero), max_x)
                offset = ny * width + nx
            with b.section("load"):
                pixel = b.load(args["img"], offset)
                weight = b.load(args["weights"], tap)
            with b.section("mac"):
                b.move(acc, b.fma(weight, pixel, acc))
    with b.section("store"):
        b.store(acc, args["out"], gid)


def make_gaussian_kernel() -> Kernel:
    """Build the 3x3 Gaussian blur kernel (one output pixel per work-item)."""
    return Kernel(
        name="gaussian",
        params=(
            BufferParam("img"),
            BufferParam("weights"),
            BufferParam("out", writable=True),
            ScalarParam("width", kind=INT),
            ScalarParam("height", kind=INT),
        ),
        body=_body,
        description="3x3 Gaussian blur with replicate padding",
        tags=("math", "stencil"),
    )


GAUSSIAN = register_kernel(make_gaussian_kernel())
