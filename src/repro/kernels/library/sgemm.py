"""Dense single-precision matrix multiply (``sgemm``).

The paper evaluates ``sgemm`` with ``x: 256, y: 16, z: 144`` -- a 256 x 144
matrix times a 144 x 16 matrix.  One work-item computes one output element,
so the flattened global work size is ``M * N``::

    row = gid // N
    col = gid %  N
    C[row, col] = sum_k A[row, k] * B[k, col]

Matrices are stored row-major.
"""

from __future__ import annotations

from typing import Mapping

from repro.kernels.builder import KernelBuilder
from repro.kernels.kernel import Kernel
from repro.kernels.registry import register_kernel
from repro.kernels.signature import BufferParam, ScalarParam
from repro.kernels.values import INT, Value


def _body(b: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
    n = args["n"]
    k_dim = args["k"]
    with b.section("index"):
        row = gid // n
        col = gid % n
        a_row = row * k_dim          # offset of A[row, 0]
    with b.section("compute"):
        acc = b.copy(b.const(0.0))
        with b.for_range(k_dim, guard=False) as k:
            with b.section("load"):
                a_elem = b.load(args["a"], a_row + k)
                b_elem = b.load(args["b"], k * n + col)
            with b.section("mac"):
                b.move(acc, b.fma(a_elem, b_elem, acc))
    with b.section("store"):
        b.store(acc, args["c"], gid)


def make_sgemm_kernel() -> Kernel:
    """Build the ``sgemm`` kernel (C = A @ B, one output element per work-item)."""
    return Kernel(
        name="sgemm",
        params=(
            BufferParam("a"),
            BufferParam("b"),
            BufferParam("c", writable=True),
            ScalarParam("m", kind=INT),
            ScalarParam("n", kind=INT),
            ScalarParam("k", kind=INT),
        ),
        body=_body,
        description="dense matrix multiply C[MxN] = A[MxK] @ B[KxN]",
        tags=("math", "compute-bound"),
    )


SGEMM = register_kernel(make_sgemm_kernel())
