"""Element-wise vector addition (``vecadd``).

The paper's running example (Figure 1 traces a 128-element vecadd on a
1-core/2-warp/4-thread machine) and one of the Figure-2 math kernels
(length 4096).  One work-item computes one output element::

    c[gid] = a[gid] + b[gid]
"""

from __future__ import annotations

from typing import Mapping

from repro.kernels.builder import KernelBuilder
from repro.kernels.kernel import Kernel
from repro.kernels.registry import register_kernel
from repro.kernels.signature import BufferParam
from repro.kernels.values import Value


def _body(b: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
    with b.section("load"):
        x = b.load(args["a"], gid)
        y = b.load(args["b"], gid)
    with b.section("compute"):
        total = x + y
    with b.section("store"):
        b.store(total, args["c"], gid)


def make_vecadd_kernel() -> Kernel:
    """Build the ``vecadd`` kernel (c = a + b, one element per work-item)."""
    return Kernel(
        name="vecadd",
        params=(
            BufferParam("a"),
            BufferParam("b"),
            BufferParam("c", writable=True),
        ),
        body=_body,
        description="element-wise vector addition c[i] = a[i] + b[i]",
        tags=("math", "memory-bound"),
    )


VECADD = register_kernel(make_vecadd_kernel())
