"""The paper's kernel library.

Nine workloads are evaluated in the paper's Figure 2; each module below
implements one of them against the kernel DSL and registers it with the
kernel registry:

* :mod:`vecadd`  -- 4096-element vector addition (also the Figure-1 example).
* :mod:`relu`    -- element-wise rectified linear unit.
* :mod:`saxpy`   -- single-precision ``y = a*x + y``.
* :mod:`sgemm`   -- dense matrix multiply (paper: 256 x 16, K=144).
* :mod:`knn`     -- nearest-neighbour distance kernel (Rodinia-style ``nn``).
* :mod:`gaussian`-- 2D Gaussian blur filter (paper: 360 x 360).
* :mod:`gcn`     -- GCN neighbourhood aggregation and a combined GCN layer
  (paper: Cora, hidden size 16).
* :mod:`conv2d`  -- a 3x3 convolution + ReLU layer as used by ResNet20 on
  CIFAR-10 (paper: 16 channels).
"""

from repro.kernels.library.conv2d import CONV2D
from repro.kernels.library.gaussian import GAUSSIAN
from repro.kernels.library.gcn import GCN_AGGREGATE, GCN_LAYER
from repro.kernels.library.knn import KNN
from repro.kernels.library.relu import RELU
from repro.kernels.library.saxpy import SAXPY
from repro.kernels.library.sgemm import SGEMM
from repro.kernels.library.vecadd import VECADD

#: All library kernels in the order they appear in the paper's Figure 2.
ALL_KERNELS = (
    KNN,
    VECADD,
    RELU,
    SAXPY,
    SGEMM,
    GAUSSIAN,
    GCN_AGGREGATE,
    CONV2D,
    GCN_LAYER,
)

__all__ = [
    "ALL_KERNELS",
    "CONV2D",
    "GAUSSIAN",
    "GCN_AGGREGATE",
    "GCN_LAYER",
    "KNN",
    "RELU",
    "SAXPY",
    "SGEMM",
    "VECADD",
]
