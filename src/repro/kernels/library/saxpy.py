"""Single-precision a*x plus y (``saxpy``).

One of the Figure-2 math kernels (length 4096).  One work-item computes one
output element::

    y[gid] = a * x[gid] + y[gid]
"""

from __future__ import annotations

from typing import Mapping

from repro.kernels.builder import KernelBuilder
from repro.kernels.kernel import Kernel
from repro.kernels.registry import register_kernel
from repro.kernels.signature import BufferParam, ScalarParam
from repro.kernels.values import FLOAT, Value


def _body(b: KernelBuilder, gid: Value, args: Mapping[str, Value]) -> None:
    with b.section("load"):
        x = b.load(args["x"], gid)
        y = b.load(args["y"], gid)
    with b.section("compute"):
        result = b.fma(args["a"], x, y)
    with b.section("store"):
        b.store(result, args["y"], gid)


def make_saxpy_kernel() -> Kernel:
    """Build the ``saxpy`` kernel (y = a*x + y, one element per work-item)."""
    return Kernel(
        name="saxpy",
        params=(
            BufferParam("x"),
            BufferParam("y", writable=True),
            ScalarParam("a", kind=FLOAT),
        ),
        body=_body,
        description="saxpy y[i] = a * x[i] + y[i]",
        tags=("math", "memory-bound"),
    )


SAXPY = register_kernel(make_saxpy_kernel())
