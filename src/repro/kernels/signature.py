"""Kernel parameter declarations.

A kernel's signature is an ordered list of parameters.  Buffer parameters are
passed to the device as base word-addresses; scalar parameters are passed by
value.  Both travel through the argument CSR window
(:data:`repro.isa.registers.Csr.ARG_BASE`), mirroring how the Vortex runtime
hands an argument buffer to kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.kernels.values import FLOAT, INT


@dataclass(frozen=True)
class KernelParam:
    """Base class for kernel parameters."""

    name: str

    @property
    def dtype(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class BufferParam(KernelParam):
    """A global-memory buffer argument.

    ``writable`` marks output buffers (used by the runtime to know which
    buffers must be copied back and by tests to check read-only buffers are
    not clobbered).
    """

    writable: bool = False

    @property
    def dtype(self) -> str:
        return INT  # the kernel sees the base word-address as an integer


@dataclass(frozen=True)
class ScalarParam(KernelParam):
    """A by-value scalar argument (``int`` or ``float``)."""

    kind: str = INT

    def __post_init__(self):
        if self.kind not in (INT, FLOAT):
            raise ValueError(f"scalar kind must be 'i' or 'f', got {self.kind!r}")

    @property
    def dtype(self) -> str:
        return self.kind


def validate_signature(params: Tuple[KernelParam, ...]) -> None:
    """Check that parameter names are unique and non-empty."""
    seen = set()
    for param in params:
        if not param.name:
            raise ValueError("kernel parameters need a name")
        if param.name in seen:
            raise ValueError(f"duplicate kernel parameter {param.name!r}")
        seen.add(param.name)
