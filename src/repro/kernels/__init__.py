"""Kernel DSL and the paper's kernel library.

Kernels are written against a small builder DSL (:class:`KernelBuilder`) that
plays the role of OpenCL C + the POCL compiler in the original work: a kernel
describes the computation of *one work-item* as a function of its global id,
and the runtime wraps it in the Vortex-style workgroup loop
(:func:`build_workgroup_program`).

The library subpackage provides the nine workloads evaluated in the paper:
``vecadd``, ``relu``, ``saxpy``, ``sgemm``, ``knn``, ``gaussian`` (blur
filter), ``gcn_aggregate``, ``gcn_layer`` and ``conv2d`` (the ResNet20 layer).
"""

from repro.kernels.builder import BuildError, KernelBuilder
from repro.kernels.kernel import Kernel, KernelArgumentError
from repro.kernels.registry import available_kernels, get_kernel, register_kernel
from repro.kernels.signature import BufferParam, ScalarParam
from repro.kernels.values import Value
from repro.kernels.wrapper import build_workgroup_program

# Importing the library registers every kernel with the registry.
from repro.kernels import library as _library  # noqa: F401  (side-effect import)

__all__ = [
    "BufferParam",
    "BuildError",
    "Kernel",
    "KernelArgumentError",
    "KernelBuilder",
    "ScalarParam",
    "Value",
    "available_kernels",
    "build_workgroup_program",
    "get_kernel",
    "register_kernel",
]
