"""Command-line interface.

Exposes the library's main workflows without writing Python::

    python -m repro info    --config 8c8w8t --gws 4096
    python -m repro run     vecadd --config 4c8w8t --scale bench [--lws 32] [--trace]
    python -m repro figure1
    python -m repro sweep   --kernels vecadd,sgemm --sweep smoke --scale bench -o sweep.json
    python -m repro report  sweep.json
    python -m repro campaign run --kernels vecadd --sweep smoke --workers 4
    python -m repro campaign status [--source warehouse]
    python -m repro campaign clear-cache
    python -m repro scenario list
    python -m repro scenario run scaling --scale smoke --workers 4
    python -m repro scenario resume scaling --scale smoke
    python -m repro scenario report scaling --scale smoke
    python -m repro warehouse sync
    python -m repro warehouse query "SELECT problem, MIN(cycles) FROM jobs GROUP BY problem"
    python -m repro warehouse report best-lws
    python -m repro --engine fast run sgemm --config 4c8w8t

``--engine {reference,fast}`` (or the ``REPRO_ENGINE`` environment variable)
selects the simulation engine for every launch of the invocation.  The two
engines are bit-identical -- same cycles, counters and output buffers,
enforced by ``tests/test_engine_differential.py`` -- so the choice never
affects results, only wall-clock time.

``info`` answers the runtime question the paper poses (what lws should this
launch use on this machine) and ``run`` executes a single workload under a
chosen or runtime-selected mapping.  Every experiment is a registered
*scenario* (``repro scenario list``) executed by the declarative planner:
grids expand to content-addressed jobs, results stream to a JSONL sink (so
interrupted runs resume), and the campaign engine supplies parallel workers
plus the persistent result cache (``~/.cache/repro`` by default, overridden
by ``REPRO_CACHE_DIR`` or ``--cache-dir``).  ``figure1``, ``sweep``,
``report`` and ``campaign run`` are thin aliases over the ported paper
scenarios, kept for familiarity.

``warehouse`` is the SQL analytics tier over everything the journals have
recorded: ``sync`` ingests the cache and sink journals incrementally,
``rebuild`` re-derives the whole store (and proves parity against the
journals), ``status``/``query``/``report`` answer cross-campaign questions
without re-parsing a single JSONL file.  The backend is stdlib sqlite by
default; ``REPRO_WAREHOUSE_BACKEND=duckdb`` selects DuckDB where installed.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.campaign.cache import CACHE_DIR_ENV, ResultCache
from repro.campaign.runner import CampaignRunner
from repro.core.advisor import TuningAdvisor
from repro.core.optimizer import optimal_local_size
from repro.experiments.claims import evaluate_claims
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import Figure2Result
from repro.experiments.report import (
    render_figure2_table,
    render_speedup_summary,
    render_table,
)
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.scenarios import (
    REGISTRY,
    Planner,
    ResultSink,
    ScenarioContext,
    ScenarioError,
    UnknownScenarioError,
    default_sink_path,
)
from repro.scenarios.library import figure2_result_from_run
from repro.sim.config import ArchConfig
from repro.sim.engine import DEFAULT_ENGINE, ENGINE_ENV, ENGINES
from repro.warehouse import (
    CANNED,
    WarehouseError,
    WarehouseSinkView,
    journal_synced,
    open_store,
    parity_check,
    rebuild as warehouse_rebuild,
    render_status,
    run_canned,
    run_sql,
    sync as warehouse_sync,
)
from repro.trace.render import render_issue_timeline, render_summary
from repro.trace.tracer import Tracer
from repro.workloads.problems import available_problems, make_problem


# ----------------------------------------------------------------------
# Shared option groups (argparse parent parsers)
# ----------------------------------------------------------------------
def _grid_options() -> argparse.ArgumentParser:
    """The grid flags shared by ``sweep``, ``campaign run`` and ``scenario run``.

    One definition instead of three copy-pasted blocks: every command that
    shapes an experiment grid accepts the same ``--kernels/--sweep/--scale/
    --seed/--exact-calls`` vocabulary.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--kernels", default="vecadd,relu,saxpy,sgemm,knn",
                        help="comma-separated workload names")
    parent.add_argument("--sweep", default="smoke", choices=("smoke", "bench", "paper"),
                        help="hardware-configuration grid")
    parent.add_argument("--scale", default="bench", choices=("smoke", "bench", "paper"),
                        help="problem sizes")
    parent.add_argument("--seed", type=int, default=0,
                        help="single RNG seed threaded into every grid point")
    parent.add_argument("--exact-calls", action="store_true",
                        help="simulate every sequential kernel call (no extrapolation)")
    return parent


def _cache_options(no_cache: bool = True) -> argparse.ArgumentParser:
    """The result-cache flags shared by ``campaign`` and ``scenario`` commands."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--cache-dir", default=None,
                        help=f"cache directory (default: $"
                             f"{CACHE_DIR_ENV} or ~/.cache/repro)")
    if no_cache:
        parent.add_argument("--no-cache", action="store_true",
                            help="simulate every point fresh, persist nothing")
    return parent


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for documentation and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vortex-like GPGPU simulator with runtime micro-architecture-aware "
                    "kernel mapping (IISWC 2023 reproduction).",
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="simulation engine driving every launch of this invocation "
             f"(default: ${ENGINE_ENV} or '{DEFAULT_ENGINE}').  Both engines "
             "produce bit-identical cycles, counters and output buffers; "
             "'fast' is simply quicker.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    grid = _grid_options()
    cache = _cache_options()

    info = sub.add_parser("info", help="describe a machine and the Eq.-1 mapping for a launch")
    info.add_argument("--config", default="4c8w8t", help="machine shape, e.g. 4c8w8t")
    info.add_argument("--gws", type=int, default=None, help="global work size to map")

    run = sub.add_parser("run", help="run one workload on one machine")
    run.add_argument("problem", choices=available_problems())
    run.add_argument("--config", default="4c8w8t", help="machine shape, e.g. 4c8w8t")
    run.add_argument("--scale", default="bench", choices=("smoke", "bench", "paper"))
    run.add_argument("--lws", type=int, default=None,
                     help="local work size (omit to use the runtime Eq.-1 choice)")
    run.add_argument("--trace", action="store_true", help="print an issue timeline")
    run.add_argument("--advise", action="store_true", help="print the tuning-advisor report")

    figure1 = sub.add_parser("figure1", help="reproduce the paper's Figure-1 trace study")
    figure1.add_argument("--length", type=int, default=128)
    figure1.add_argument("--lws", type=int, nargs="*", default=[1, 16, 32, 64])

    sweep = sub.add_parser("sweep", parents=[grid],
                           help="run a Figure-2 style sweep (alias of the "
                                "'figure2' scenario, without a sink)")
    sweep.add_argument("-o", "--output", default=None, help="write raw records to a JSON file")

    report = sub.add_parser("report", help="render the Figure-2 table from a saved sweep")
    report.add_argument("input", help="JSON file produced by 'repro sweep -o'")
    report.add_argument("--claims", action="store_true", help="also evaluate the Section-3 claims")

    campaign = sub.add_parser(
        "campaign",
        help="parallel sweeps with a persistent, content-addressed result cache",
        description="Run experiment grids through the campaign engine: each "
                    "(kernel, machine, lws, seed) point is hashed, served from "
                    "the cache when already simulated, and fresh points fan "
                    "out across worker processes.",
        epilog=f"The cache lives in ~/.cache/repro by default; override it "
               f"with the {CACHE_DIR_ENV} environment variable or --cache-dir. "
               f"Cached results are invalidated automatically when the "
               f"simulator version changes.",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    crun = campaign_sub.add_parser(
        "run", parents=[grid, cache],
        help="run a Figure-2 style sweep as a campaign (alias of the "
             "'figure2' scenario)")
    crun.add_argument("--workers", type=int, default=1,
                      help="worker processes for fresh points (default 1)")
    crun.add_argument("--claims", action="store_true",
                      help="also evaluate the Section-3 claims")
    crun.add_argument("-o", "--output", default=None,
                      help="write raw records to a JSON file")

    cstatus = campaign_sub.add_parser("status", parents=[_cache_options(no_cache=False)],
                                      help="show the result-cache state")
    cstatus.add_argument("--source", choices=("journal", "warehouse"), default="journal",
                         help="serve the status from the JSONL journal (default) or "
                              "from the synced warehouse (per-table row counts and "
                              "last-sync offsets instead of raw journal lines)")
    cstatus.add_argument("--db", default=None,
                         help="warehouse database path (with --source warehouse)")
    cstatus.add_argument("--backend", choices=("sqlite", "duckdb"), default=None,
                         help="warehouse backend (with --source warehouse)")
    cclear = campaign_sub.add_parser("clear-cache", parents=[_cache_options(no_cache=False)],
                                     help="delete the persistent result cache")
    del cclear

    scenario = sub.add_parser(
        "scenario",
        help="declarative experiment scenarios: list, run, resume, report",
        description="Every experiment is a registered scenario: a declarative "
                    "grid (problems x configs x strategies x engines x seeds) "
                    "plus an analysis hook.  The planner expands the grid into "
                    "content-addressed jobs, executes them through the "
                    "campaign engine, and streams one JSONL record per "
                    "completed job to a sink -- killed runs resume from the "
                    "sink, executing only the remaining jobs.",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    slist = scenario_sub.add_parser("list", help="list every registered scenario")
    del slist

    for verb, help_text in (
            ("run", "execute a scenario (resumes from its sink unless --fresh)"),
            ("resume", "continue an interrupted scenario run from its sink")):
        sparser = scenario_sub.add_parser(verb, parents=[grid, cache], help=help_text)
        sparser.set_defaults(kernels=None, sweep=None, scale=None)
        sparser.add_argument("name", help="registered scenario name (see 'scenario list')")
        sparser.add_argument("--workers", type=int, default=1,
                             help="worker processes for fresh points (default 1)")
        sparser.add_argument("--sink", default=None,
                             help="JSONL sink path (default: "
                                  "scenario-runs/<name>-<scale>.jsonl, "
                                  "honouring $REPRO_SCENARIO_DIR)")
        if verb == "run":
            sparser.add_argument("--fresh", action="store_true",
                                 help="discard the existing sink and start over")

    sreport = scenario_sub.add_parser(
        "report", parents=[grid],
        help="render a scenario's analysis from its sink, without executing")
    sreport.set_defaults(kernels=None, sweep=None, scale=None)
    sreport.add_argument("name", help="registered scenario name")
    sreport.add_argument("--sink", default=None,
                         help="JSONL sink path (default: "
                              "scenario-runs/<name>-<scale>.jsonl)")
    sreport.add_argument("--source", choices=("auto", "journal", "warehouse"),
                         default="auto",
                         help="where the records come from: the JSONL sink, the "
                              "synced warehouse, or auto (warehouse when it fully "
                              "covers the sink, journal otherwise; default)")
    sreport.add_argument("--db", default=None,
                         help="warehouse database path (for --source warehouse/auto)")
    sreport.add_argument("--backend", choices=("sqlite", "duckdb"), default=None,
                         help="warehouse backend (for --source warehouse/auto)")

    warehouse = sub.add_parser(
        "warehouse",
        help="SQL analytics over every journaled result (sync/rebuild/status/"
             "query/report)",
        description="Derive a SQL-queryable warehouse from the append-only "
                    "JSONL journals (campaign cache + scenario sinks).  The "
                    "journals stay the source of truth: sync ingests them "
                    "incrementally by byte offset, rebuild re-derives the "
                    "whole store and proves the rows bit-equal to the "
                    "journals' last-wins view.",
        epilog="Backend: stdlib sqlite by default; select DuckDB with "
               "--backend duckdb or REPRO_WAREHOUSE_BACKEND=duckdb "
               "(explicit error if the duckdb package is missing -- never a "
               "silent fallback).  The database lives next to the cache "
               "(warehouse.<backend>) unless --db or REPRO_WAREHOUSE_PATH "
               "says otherwise.",
    )
    warehouse_sub = warehouse.add_subparsers(dest="warehouse_command", required=True)
    wh_common = argparse.ArgumentParser(add_help=False)
    wh_common.add_argument("--db", default=None,
                           help="warehouse database path (default: "
                                "<cache dir>/warehouse.<backend>, or "
                                "$REPRO_WAREHOUSE_PATH)")
    wh_common.add_argument("--backend", choices=("sqlite", "duckdb"), default=None,
                           help="storage backend (default: "
                                "$REPRO_WAREHOUSE_BACKEND or sqlite)")
    wh_journals = argparse.ArgumentParser(add_help=False)
    wh_journals.add_argument("--cache-dir", default=None,
                             help="campaign cache directory to ingest "
                                  f"(default: ${CACHE_DIR_ENV} or ~/.cache/repro)")
    wh_journals.add_argument("--scenario-dir", default=None,
                             help="scenario sink directory to ingest (default: "
                                  "$REPRO_SCENARIO_DIR or scenario-runs/)")

    wsync = warehouse_sub.add_parser(
        "sync", parents=[wh_common, wh_journals],
        help="ingest new journal records incrementally (by byte offset)")
    wsync.add_argument("--full", action="store_true",
                       help="re-ingest every journal from byte zero")
    wrebuild = warehouse_sub.add_parser(
        "rebuild", parents=[wh_common, wh_journals],
        help="drop every derived row, re-ingest all journals, verify parity")
    wrebuild.add_argument("--no-verify", action="store_true",
                          help="skip the journal-parity proof after rebuilding")
    warehouse_sub.add_parser(
        "status", parents=[wh_common],
        help="per-table row counts and per-journal sync offsets")
    wquery = warehouse_sub.add_parser(
        "query", parents=[wh_common],
        help="run one read-only SQL statement (SELECT/WITH) against the store")
    wquery.add_argument("sql", help="the statement, e.g. "
                        "\"SELECT problem, MIN(cycles) FROM jobs GROUP BY problem\"")
    wreport = warehouse_sub.add_parser(
        "report", parents=[wh_common],
        help="run a canned analytics query (see --list)")
    wreport.add_argument("name", nargs="?", default=None,
                         help="canned query name (omit with --list)")
    wreport.add_argument("--list", action="store_true",
                         help="list the canned queries and exit")
    return parser


# ----------------------------------------------------------------------
def _cmd_info(args) -> int:
    config = ArchConfig.from_name(args.config)
    print(config.describe())
    if args.gws is not None:
        lws = optimal_local_size(args.gws, config)
        advisor = TuningAdvisor(config)
        print()
        print(advisor.advise(args.gws).render())
        print()
        print(f"Eq. 1: lws = ceil({args.gws} / {config.hardware_parallelism}) = {lws}")
    return 0


def _cmd_run(args) -> int:
    config = ArchConfig.from_name(args.config)
    problem = make_problem(args.problem, scale=args.scale)
    tracer = Tracer(max_events=500_000) if args.trace else None
    device = Device(config, tracer=tracer)
    result = launch_kernel(device, problem.kernel, problem.arguments, problem.global_size,
                           local_size=args.lws)
    print(problem.summary())
    print(result.summary())
    print(f"  workgroups          : {result.num_workgroups}")
    print(f"  lane utilisation    : {result.dispatch.average_lane_utilization:.1%}")
    print(f"  IPC (warp instr/cyc): {result.counters.ipc:.3f}")
    print(f"  L1 hit rate         : {result.counters.l1_hit_rate:.1%}")
    if args.trace and tracer is not None:
        print()
        print(render_issue_timeline(tracer.events, width=100,
                                    title=f"{problem.name} on {config.name}"))
        print()
        print(render_summary(tracer.events, result.counters, config.threads_per_warp))
    if args.advise:
        print()
        advisor = TuningAdvisor(config)
        print(advisor.advise(problem.global_size, current_local_size=result.local_size,
                             counters=result.counters).render())
    return 0


def _cmd_figure1(args) -> int:
    result = run_figure1(lws_values=tuple(args.lws), length=args.length)
    print(result.render())
    return 0


# ----------------------------------------------------------------------
def _grid_context(args) -> ScenarioContext:
    """A :class:`ScenarioContext` from the shared grid flags."""
    kernels = None
    if getattr(args, "kernels", None):
        kernels = tuple(name.strip() for name in args.kernels.split(",") if name.strip())
    return ScenarioContext(
        scale=args.scale if args.scale else "bench",
        seed=args.seed,
        exact_calls=args.exact_calls,
        problems=kernels,
        sweep=args.sweep,
    )


def _run_and_render_sweep(args, runner=None, claims: bool = False) -> "Figure2Result":
    """Shared body of ``sweep`` and ``campaign run``: the figure2 scenario,
    executed without a sink, rendered like the paper's data tables."""
    planner = Planner(runner=runner)
    run = planner.run(REGISTRY.get("figure2"), _grid_context(args))
    result = figure2_result_from_run(run)
    print(render_figure2_table(result))
    print()
    print(render_speedup_summary(result))
    if claims:
        print()
        print(evaluate_claims(result).render())
    return result


def _save_sweep_output(result: "Figure2Result", output: Optional[str]) -> None:
    if output:
        result.save_json(output)
        print(f"\nraw records written to {output}")


def _cmd_sweep(args) -> int:
    result = _run_and_render_sweep(args)
    _save_sweep_output(result, args.output)
    return 0


def _cmd_report(args) -> int:
    result = Figure2Result.load_json(args.input)
    print(render_figure2_table(result))
    print()
    print(render_speedup_summary(result))
    if args.claims:
        print()
        print(evaluate_claims(result).render())
    return 0


def _cmd_campaign(args) -> int:
    if args.campaign_command == "status":
        if args.source == "warehouse":
            # Million-row status is a SQL aggregate over the synced store,
            # not a full JSONL re-parse.
            try:
                with _closing_store(args.db, args.backend) as store:
                    print(render_status(store))
            except WarehouseError as error:
                print(f"error: {error}", file=sys.stderr)
                return 1
            return 0
        cache = ResultCache(args.cache_dir)
        print(cache.stats().render())
        return 0
    if args.campaign_command == "clear-cache":
        cache = ResultCache(args.cache_dir)
        path = cache.directory
        dropped = cache.clear()
        print(f"cleared {dropped} cached result(s) from {path}")
        return 0

    # campaign run
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    runner = CampaignRunner(workers=args.workers, cache=cache)
    result = _run_and_render_sweep(args, runner=runner, claims=args.claims)
    if cache is not None:
        stats = cache.stats()
        print()
        print(f"cache {stats.path}: {stats.hits} hit(s), {stats.misses} miss(es), "
              f"{stats.entries} entries")
    _save_sweep_output(result, args.output)
    return 0


# ----------------------------------------------------------------------
def _closing_store(db, backend, read_only: bool = False):
    """An ``open_store`` wrapped so every CLI exit path closes the handle."""
    import contextlib

    return contextlib.closing(open_store(db, backend=backend, read_only=read_only))


def _cmd_warehouse(args) -> int:
    try:
        if args.warehouse_command == "sync":
            with _closing_store(args.db, args.backend) as store:
                report = warehouse_sync(store, cache_dir=args.cache_dir,
                                        scenario_dir=args.scenario_dir,
                                        full=args.full)
                print(report.render())
            return 0

        if args.warehouse_command == "rebuild":
            with _closing_store(args.db, args.backend) as store:
                report = warehouse_rebuild(store, cache_dir=args.cache_dir,
                                           scenario_dir=args.scenario_dir)
                print(report.render())
                if not args.no_verify:
                    mismatches = parity_check(store, cache_dir=args.cache_dir,
                                              scenario_dir=args.scenario_dir)
                    if mismatches:
                        detail = "\n".join(mismatches)
                        print(f"parity check FAILED:\n{detail}", file=sys.stderr)
                        return 1
                    print("parity check passed: warehouse rows bit-equal to "
                          "the journals' last-wins view")
            return 0

        if args.warehouse_command == "status":
            with _closing_store(args.db, args.backend) as store:
                print(render_status(store))
            return 0

        if args.warehouse_command == "query":
            # Read-only connection: raw SQL physically cannot write.
            with _closing_store(args.db, args.backend, read_only=True) as store:
                print(run_sql(store, args.sql).render())
            return 0

        # warehouse report
        if args.list or args.name is None:
            rows = [[canned.name, canned.description]
                    for canned in CANNED.values()]
            print(render_table(["query", "answers"], rows))
            return 0
        with _closing_store(args.db, args.backend, read_only=True) as store:
            result = run_canned(store, args.name)
            print(result.render())
            if not result.rows:
                print("(no rows -- has `repro warehouse sync` run since the "
                      "last campaign?)")
        return 0
    except WarehouseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


# ----------------------------------------------------------------------
#: Comma-separated modules imported before scenario commands run, so custom
#: scenarios registered at import time appear in list/run/resume/report.
SCENARIO_MODULES_ENV = "REPRO_SCENARIO_MODULES"


def _import_scenario_modules() -> None:
    import importlib

    for module in os.environ.get(SCENARIO_MODULES_ENV, "").split(","):
        module = module.strip()
        if module:
            importlib.import_module(module)


def _report_source(args, sink: ResultSink):
    """Where ``scenario report`` reads records from: sink or warehouse.

    ``--source warehouse`` demands the synced store (and errors when the
    sink journal is not fully ingested -- serving a stale projection would
    silently drop recent records).  ``--source auto`` prefers the warehouse
    exactly when it fully covers the sink file, so a freshly appended
    journal transparently falls back to the JSONL path until the next sync.
    """
    if args.source == "journal":
        return sink
    store = open_store(args.db, backend=args.backend)
    if journal_synced(store, sink.path):
        return WarehouseSinkView(store, sink.path)
    store.close()
    if args.source == "warehouse":
        raise WarehouseError(
            f"the warehouse does not (fully) cover {sink.path}; run "
            f"`repro warehouse sync` first, or use --source journal")
    return sink


def _cmd_scenario(args) -> int:
    _import_scenario_modules()
    if args.scenario_command == "list":
        rows = [[scenario.name, scenario.default_scale, scenario.description]
                for scenario in REGISTRY]
        print(render_table(["scenario", "default scale", "description"], rows))
        print(f"\n{len(REGISTRY)} scenario(s) registered; run one with "
              f"`repro scenario run <name> [--scale smoke|bench|paper]`")
        return 0

    try:
        scenario = REGISTRY.get(args.name)
    except UnknownScenarioError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    scale = args.scale if args.scale else scenario.default_scale
    context = _grid_context(args)
    if args.scale is None:
        context = context.with_scale(scale)
    sink = ResultSink(args.sink if args.sink else default_sink_path(scenario.name, scale))

    if args.scenario_command == "report":
        planner = Planner()
        source = None
        try:
            source = _report_source(args, sink)
            run = planner.load(scenario, context, sink=source)
            print(run.report())
            return 0
        except (ScenarioError, WarehouseError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        finally:
            if isinstance(source, WarehouseSinkView):
                source.store.close()

    if args.scenario_command == "resume" and not sink.exists():
        print(f"error: no sink at {sink.path} to resume from; "
              f"start with `repro scenario run {scenario.name}`", file=sys.stderr)
        return 1

    # Non-cacheable scenarios (wall-time measurements) never touch the cache;
    # skip even loading its journal.
    use_cache = scenario.cacheable and not args.no_cache
    cache = ResultCache(args.cache_dir) if use_cache else None
    runner = CampaignRunner(workers=args.workers, cache=cache)
    planner = Planner(runner=runner)
    fresh = bool(getattr(args, "fresh", False))
    try:
        run = planner.run(scenario, context, sink=sink, fresh=fresh)
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"scenario {scenario.name!r} ({scale}): {run.stats.render()}")
    print(f"sink: {sink.path}")
    print()
    print(run.report())
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "run": _cmd_run,
    "figure1": _cmd_figure1,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "campaign": _cmd_campaign,
    "scenario": _cmd_scenario,
    "warehouse": _cmd_warehouse,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.engine is None:
        return _COMMANDS[args.command](args)
    # The engine is threaded through the environment rather than through
    # every experiment/campaign signature: Device() resolves it wherever one
    # is built, including inside campaign worker processes (which inherit the
    # environment).  Restored afterwards so in-process callers (tests) are
    # unaffected.
    previous = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = args.engine
    try:
        return _COMMANDS[args.command](args)
    finally:
        if previous is None:
            os.environ.pop(ENGINE_ENV, None)
        else:
            os.environ[ENGINE_ENV] = previous


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
