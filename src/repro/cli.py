"""Command-line interface.

Exposes the library's main workflows without writing Python::

    python -m repro info    --config 8c8w8t --gws 4096
    python -m repro run     vecadd --config 4c8w8t --scale bench [--lws 32] [--trace]
    python -m repro figure1
    python -m repro sweep   --kernels vecadd,sgemm --sweep smoke --scale bench -o sweep.json
    python -m repro report  sweep.json
    python -m repro campaign run --kernels vecadd --sweep smoke --workers 4
    python -m repro campaign status [--source warehouse]
    python -m repro campaign clear-cache
    python -m repro scenario list
    python -m repro scenario run scaling --scale smoke --workers 4
    python -m repro scenario resume scaling --scale smoke
    python -m repro scenario report scaling --scale smoke
    python -m repro warehouse sync
    python -m repro warehouse query "SELECT problem, MIN(cycles) FROM jobs GROUP BY problem"
    python -m repro warehouse report best-lws
    python -m repro --engine fast run sgemm --config 4c8w8t
    python -m repro --telemetry scenario run scaling --scale smoke --progress
    python -m repro telemetry summary
    python -m repro telemetry export prometheus -o metrics.prom

``--engine {reference,fast,batch}`` (or the ``REPRO_ENGINE`` environment
variable) selects the simulation engine for every launch of the invocation.
The three engines are bit-identical -- same cycles, counters and output
buffers, enforced by ``tests/test_engine_differential.py`` and
``tests/test_engine_fuzz.py`` -- so the choice never affects results, only
wall-clock time.

``info`` answers the runtime question the paper poses (what lws should this
launch use on this machine) and ``run`` executes a single workload under a
chosen or runtime-selected mapping.  Every experiment is a registered
*scenario* (``repro scenario list``) executed by the declarative planner:
grids expand to content-addressed jobs, results stream to a JSONL sink (so
interrupted runs resume), and the campaign engine supplies parallel workers
plus the persistent result cache (``~/.cache/repro`` by default, overridden
by ``REPRO_CACHE_DIR`` or ``--cache-dir``).  ``figure1``, ``sweep``,
``report`` and ``campaign run`` are thin aliases over the ported paper
scenarios, kept for familiarity.

``warehouse`` is the SQL analytics tier over everything the journals have
recorded: ``sync`` ingests the cache, sink *and telemetry* journals
incrementally, ``rebuild`` re-derives the whole store (and proves parity
against the journals), ``status``/``query``/``report`` answer
cross-campaign questions without re-parsing a single JSONL file.  The
backend is stdlib sqlite by default; ``REPRO_WAREHOUSE_BACKEND=duckdb``
selects DuckDB where installed.

``--telemetry`` (or ``REPRO_TELEMETRY=1``) records spans and metrics for
the whole invocation -- planner expansion, per-job execution and queue
wait, cache and sink I/O, engine phase timers -- and appends them to the
telemetry journal (``telemetry/telemetry.jsonl``, ``$REPRO_TELEMETRY_DIR``
aware) on exit.  ``repro telemetry summary`` aggregates the journal;
``repro telemetry export prometheus|chrome|json`` re-shapes it for scrapers
and ``chrome://tracing``.  ``--progress`` adds a live done/total + hit rate
+ jobs/sec + ETA line on stderr to ``campaign run`` and ``scenario
run``/``resume``; it works with telemetry off.

Output discipline: stdout carries only the command's machine-readable or
report output (tables, JSON, Prometheus text); every diagnostic, stat line
and error goes through the structured stderr logger
(:mod:`repro.telemetry.log`, level from ``$REPRO_LOG_LEVEL``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.campaign.cache import CACHE_DIR_ENV, ResultCache
from repro.campaign.runner import CampaignRunner
from repro.core.advisor import TuningAdvisor
from repro.core.optimizer import optimal_local_size
from repro.experiments.claims import evaluate_claims
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import Figure2Result
from repro.experiments.report import (
    render_figure2_table,
    render_speedup_summary,
    render_table,
)
from repro.runtime.device import Device
from repro.runtime.launcher import launch_kernel
from repro.scenarios import (
    REGISTRY,
    Planner,
    ResultSink,
    ScenarioContext,
    ScenarioError,
    UnknownScenarioError,
    default_sink_path,
)
from repro.scenarios.library import figure2_result_from_run
from repro.service.queue import SERVICE_DIR_ENV
from repro.sim.config import ArchConfig
from repro.sim.engine import DEFAULT_ENGINE, ENGINE_ENV, ENGINES
from repro.telemetry.export import (
    render_summary as render_telemetry_summary,
    summarize,
    to_chrome_trace,
    to_json,
    to_prometheus,
)
from repro.telemetry.journal import (
    TELEMETRY_DIR_ENV,
    default_journal_path,
    flush as flush_telemetry,
    iter_telemetry_records,
)
from repro.telemetry.log import configure_from_env as configure_logging, get_logger
from repro.telemetry.progress import ProgressLine
from repro.telemetry.recorder import RECORDER, TELEMETRY_ENV
from repro.warehouse import (
    CANNED,
    WarehouseError,
    WarehouseSinkView,
    journal_synced,
    open_store,
    parity_check,
    rebuild as warehouse_rebuild,
    render_status,
    run_canned,
    run_sql,
    status_payload,
    sync as warehouse_sync,
)
from repro.trace.render import render_issue_timeline, render_summary
from repro.trace.tracer import Tracer
from repro.workloads.problems import available_problems, make_problem

_LOG = get_logger("cli")


# ----------------------------------------------------------------------
# Shared option groups (argparse parent parsers)
# ----------------------------------------------------------------------
def _grid_options() -> argparse.ArgumentParser:
    """The grid flags shared by ``sweep``, ``campaign run`` and ``scenario run``.

    One definition instead of three copy-pasted blocks: every command that
    shapes an experiment grid accepts the same ``--kernels/--sweep/--scale/
    --seed/--exact-calls`` vocabulary.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--kernels", default="vecadd,relu,saxpy,sgemm,knn",
                        help="comma-separated workload names")
    parent.add_argument("--sweep", default="smoke", choices=("smoke", "bench", "paper"),
                        help="hardware-configuration grid")
    parent.add_argument("--scale", default="bench", choices=("smoke", "bench", "paper"),
                        help="problem sizes")
    parent.add_argument("--seed", type=int, default=0,
                        help="single RNG seed threaded into every grid point")
    parent.add_argument("--exact-calls", action="store_true",
                        help="simulate every sequential kernel call (no extrapolation)")
    return parent


def _executor_options() -> argparse.ArgumentParser:
    """The distributed-execution flags shared by every run command.

    ``--executor local`` (the default) keeps the single-host process pool;
    ``--executor dist`` starts a work-stealing coordinator in this process
    and executes on whatever ``repro worker`` processes join it.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--executor", choices=("local", "dist"),
                        default="local",
                        help="where jobs execute: this host's process pool "
                             "(local, default) or a distributed worker fleet "
                             "(dist)")
    parent.add_argument("--listen", default="127.0.0.1:0",
                        help="with --executor dist: coordinator bind address "
                             "as HOST:PORT (default 127.0.0.1:0 -- a free "
                             "port, logged at startup)")
    parent.add_argument("--dist-workers", type=int, default=0, metavar="N",
                        help="with --executor dist: also spawn N worker "
                             "processes on this host (default 0 -- workers "
                             "join via `repro worker --connect`)")
    parent.add_argument("--wait-workers", type=int, default=None, metavar="N",
                        help="with --executor dist: block until N workers "
                             "have joined before running (default: the "
                             "--dist-workers count)")
    return parent


def _cache_options(no_cache: bool = True) -> argparse.ArgumentParser:
    """The result-cache flags shared by ``campaign`` and ``scenario`` commands."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--cache-dir", default=None,
                        help=f"cache directory (default: $"
                             f"{CACHE_DIR_ENV} or ~/.cache/repro)")
    if no_cache:
        parent.add_argument("--no-cache", action="store_true",
                            help="simulate every point fresh, persist nothing")
    return parent


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for documentation and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vortex-like GPGPU simulator with runtime micro-architecture-aware "
                    "kernel mapping (IISWC 2023 reproduction).",
    )
    parser.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="simulation engine driving every launch of this invocation "
             f"(default: ${ENGINE_ENV} or '{DEFAULT_ENGINE}').  All engines "
             "produce bit-identical cycles, counters and output buffers; "
             "'fast' and 'batch' are simply quicker.",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="record spans and metrics for this invocation (equivalent to "
             f"${TELEMETRY_ENV}=1, which campaign workers inherit); the "
             "records append to the telemetry journal on exit.  Results are "
             "bit-identical with telemetry on or off.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    grid = _grid_options()
    cache = _cache_options()
    executor = _executor_options()

    info = sub.add_parser("info", help="describe a machine and the Eq.-1 mapping for a launch")
    info.add_argument("--config", default="4c8w8t", help="machine shape, e.g. 4c8w8t")
    info.add_argument("--gws", type=int, default=None, help="global work size to map")

    run = sub.add_parser("run", help="run one workload on one machine")
    run.add_argument("problem", choices=available_problems())
    run.add_argument("--config", default="4c8w8t", help="machine shape, e.g. 4c8w8t")
    run.add_argument("--scale", default="bench", choices=("smoke", "bench", "paper"))
    run.add_argument("--lws", type=int, default=None,
                     help="local work size (omit to use the runtime Eq.-1 choice)")
    run.add_argument("--trace", action="store_true", help="print an issue timeline")
    run.add_argument("--advise", action="store_true", help="print the tuning-advisor report")

    figure1 = sub.add_parser("figure1", help="reproduce the paper's Figure-1 trace study")
    figure1.add_argument("--length", type=int, default=128)
    figure1.add_argument("--lws", type=int, nargs="*", default=[1, 16, 32, 64])

    sweep = sub.add_parser("sweep", parents=[grid],
                           help="run a Figure-2 style sweep (alias of the "
                                "'figure2' scenario, without a sink)")
    sweep.add_argument("-o", "--output", default=None, help="write raw records to a JSON file")

    report = sub.add_parser("report", help="render the Figure-2 table from a saved sweep")
    report.add_argument("input", help="JSON file produced by 'repro sweep -o'")
    report.add_argument("--claims", action="store_true", help="also evaluate the Section-3 claims")

    campaign = sub.add_parser(
        "campaign",
        help="parallel sweeps with a persistent, content-addressed result cache",
        description="Run experiment grids through the campaign engine: each "
                    "(kernel, machine, lws, seed) point is hashed, served from "
                    "the cache when already simulated, and fresh points fan "
                    "out across worker processes.",
        epilog=f"The cache lives in ~/.cache/repro by default; override it "
               f"with the {CACHE_DIR_ENV} environment variable or --cache-dir. "
               f"Cached results are invalidated automatically when the "
               f"simulator version changes.",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    crun = campaign_sub.add_parser(
        "run", parents=[grid, cache, executor],
        help="run a Figure-2 style sweep as a campaign (alias of the "
             "'figure2' scenario)")
    crun.add_argument("--workers", type=int, default=1,
                      help="worker processes for fresh points (default 1)")
    crun.add_argument("--claims", action="store_true",
                      help="also evaluate the Section-3 claims")
    crun.add_argument("-o", "--output", default=None,
                      help="write raw records to a JSON file")
    crun.add_argument("--progress", action="store_true",
                      help="live progress line on stderr (done/total, hit "
                           "rate, jobs/sec, ETA)")

    cstatus = campaign_sub.add_parser("status", parents=[_cache_options(no_cache=False)],
                                      help="show the result-cache state")
    cstatus.add_argument("--source", choices=("journal", "warehouse"), default="journal",
                         help="serve the status from the JSONL journal (default) or "
                              "from the synced warehouse (per-table row counts and "
                              "last-sync offsets instead of raw journal lines)")
    cstatus.add_argument("--db", default=None,
                         help="warehouse database path (with --source warehouse)")
    cstatus.add_argument("--backend", choices=("sqlite", "duckdb"), default=None,
                         help="warehouse backend (with --source warehouse)")
    cstatus.add_argument("--json", action="store_true",
                         help="emit the status as JSON instead of text")
    cclear = campaign_sub.add_parser("clear-cache", parents=[_cache_options(no_cache=False)],
                                     help="delete the persistent result cache")
    del cclear

    scenario = sub.add_parser(
        "scenario",
        help="declarative experiment scenarios: list, run, resume, report",
        description="Every experiment is a registered scenario: a declarative "
                    "grid (problems x configs x strategies x engines x seeds) "
                    "plus an analysis hook.  The planner expands the grid into "
                    "content-addressed jobs, executes them through the "
                    "campaign engine, and streams one JSONL record per "
                    "completed job to a sink -- killed runs resume from the "
                    "sink, executing only the remaining jobs.",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    slist = scenario_sub.add_parser("list", help="list every registered scenario")
    del slist

    for verb, help_text in (
            ("run", "execute a scenario (resumes from its sink unless --fresh)"),
            ("resume", "continue an interrupted scenario run from its sink")):
        sparser = scenario_sub.add_parser(verb, parents=[grid, cache, executor],
                                          help=help_text)
        sparser.set_defaults(kernels=None, sweep=None, scale=None)
        sparser.add_argument("name", help="registered scenario name (see 'scenario list')")
        sparser.add_argument("--workers", type=int, default=1,
                             help="worker processes for fresh points (default 1)")
        sparser.add_argument("--sink", default=None,
                             help="JSONL sink path (default: "
                                  "scenario-runs/<name>-<scale>.jsonl, "
                                  "honouring $REPRO_SCENARIO_DIR)")
        sparser.add_argument("--progress", action="store_true",
                             help="live progress line on stderr (done/total, "
                                  "hit rate, jobs/sec, ETA)")
        if verb == "run":
            sparser.add_argument("--fresh", action="store_true",
                                 help="discard the existing sink and start over")

    sreport = scenario_sub.add_parser(
        "report", parents=[grid],
        help="render a scenario's analysis from its sink, without executing")
    sreport.set_defaults(kernels=None, sweep=None, scale=None)
    sreport.add_argument("name", help="registered scenario name")
    sreport.add_argument("--sink", default=None,
                         help="JSONL sink path (default: "
                              "scenario-runs/<name>-<scale>.jsonl)")
    sreport.add_argument("--source", choices=("auto", "journal", "warehouse"),
                         default="auto",
                         help="where the records come from: the JSONL sink, the "
                              "synced warehouse, or auto (warehouse when it fully "
                              "covers the sink, journal otherwise; default)")
    sreport.add_argument("--db", default=None,
                         help="warehouse database path (for --source warehouse/auto)")
    sreport.add_argument("--backend", choices=("sqlite", "duckdb"), default=None,
                         help="warehouse backend (for --source warehouse/auto)")
    sreport.add_argument("--json", action="store_true",
                         help="emit the run (stats + per-point records) as "
                              "JSON instead of the human report")

    warehouse = sub.add_parser(
        "warehouse",
        help="SQL analytics over every journaled result (sync/rebuild/status/"
             "query/report)",
        description="Derive a SQL-queryable warehouse from the append-only "
                    "JSONL journals (campaign cache + scenario sinks).  The "
                    "journals stay the source of truth: sync ingests them "
                    "incrementally by byte offset, rebuild re-derives the "
                    "whole store and proves the rows bit-equal to the "
                    "journals' last-wins view.",
        epilog="Backend: stdlib sqlite by default; select DuckDB with "
               "--backend duckdb or REPRO_WAREHOUSE_BACKEND=duckdb "
               "(explicit error if the duckdb package is missing -- never a "
               "silent fallback).  The database lives next to the cache "
               "(warehouse.<backend>) unless --db or REPRO_WAREHOUSE_PATH "
               "says otherwise.",
    )
    warehouse_sub = warehouse.add_subparsers(dest="warehouse_command", required=True)
    wh_common = argparse.ArgumentParser(add_help=False)
    wh_common.add_argument("--db", default=None,
                           help="warehouse database path (default: "
                                "<cache dir>/warehouse.<backend>, or "
                                "$REPRO_WAREHOUSE_PATH)")
    wh_common.add_argument("--backend", choices=("sqlite", "duckdb"), default=None,
                           help="storage backend (default: "
                                "$REPRO_WAREHOUSE_BACKEND or sqlite)")
    wh_journals = argparse.ArgumentParser(add_help=False)
    wh_journals.add_argument("--cache-dir", default=None,
                             help="campaign cache directory to ingest "
                                  f"(default: ${CACHE_DIR_ENV} or ~/.cache/repro)")
    wh_journals.add_argument("--scenario-dir", default=None,
                             help="scenario sink directory to ingest (default: "
                                  "$REPRO_SCENARIO_DIR or scenario-runs/)")
    wh_journals.add_argument("--telemetry-dir", default=None,
                             help="telemetry journal directory to ingest "
                                  f"(default: ${TELEMETRY_DIR_ENV} or "
                                  "telemetry/)")

    wsync = warehouse_sub.add_parser(
        "sync", parents=[wh_common, wh_journals],
        help="ingest new journal records incrementally (by byte offset)")
    wsync.add_argument("--full", action="store_true",
                       help="re-ingest every journal from byte zero")
    wrebuild = warehouse_sub.add_parser(
        "rebuild", parents=[wh_common, wh_journals],
        help="drop every derived row, re-ingest all journals, verify parity")
    wrebuild.add_argument("--no-verify", action="store_true",
                          help="skip the journal-parity proof after rebuilding")
    warehouse_sub.add_parser(
        "status", parents=[wh_common],
        help="per-table row counts and per-journal sync offsets")
    wquery = warehouse_sub.add_parser(
        "query", parents=[wh_common],
        help="run one read-only SQL statement (SELECT/WITH) against the store")
    wquery.add_argument("sql", help="the statement, e.g. "
                        "\"SELECT problem, MIN(cycles) FROM jobs GROUP BY problem\"")
    wreport = warehouse_sub.add_parser(
        "report", parents=[wh_common],
        help="run a canned analytics query (see --list)")
    wreport.add_argument("name", nargs="?", default=None,
                         help="canned query name (omit with --list)")
    wreport.add_argument("--list", action="store_true",
                         help="list the canned queries and exit")

    telemetry = sub.add_parser(
        "telemetry",
        help="summarise or export the recorded spans/metrics journal",
        description="Aggregate and export the telemetry journal that "
                    "--telemetry (or REPRO_TELEMETRY=1) invocations append "
                    "to: 'summary' folds it into per-span and per-metric "
                    "aggregates, 'export' re-shapes it as Prometheus text "
                    "exposition, chrome://tracing JSON, or the summary JSON.",
        epilog=f"The journal lives at telemetry/telemetry.jsonl unless "
               f"${TELEMETRY_DIR_ENV} or --journal says otherwise.",
    )
    telemetry_sub = telemetry.add_subparsers(dest="telemetry_command",
                                             required=True)
    tele_common = argparse.ArgumentParser(add_help=False)
    tele_common.add_argument("--journal", default=None,
                             help="telemetry journal path (default: "
                                  "telemetry/telemetry.jsonl, honouring "
                                  f"${TELEMETRY_DIR_ENV})")
    tsummary = telemetry_sub.add_parser(
        "summary", parents=[tele_common],
        help="aggregate spans, counters, gauges and histograms")
    tsummary.add_argument("--json", action="store_true",
                          help="emit the summary as JSON instead of text")
    texport = telemetry_sub.add_parser(
        "export", parents=[tele_common],
        help="export the journal for external tools")
    texport.add_argument("format", choices=("prometheus", "chrome", "json"),
                         help="prometheus text exposition, chrome://tracing "
                              "JSON, or the summary as JSON")
    texport.add_argument("-o", "--output", default=None,
                         help="write to a file instead of stdout")

    serve = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP API",
        description="Serve the async job API over the campaign stack: "
                    "POST /jobs submits a scenario name or an ad-hoc grid, "
                    "GET /jobs/{id} polls it, GET /jobs/{id}/events streams "
                    "progress as Server-Sent Events, and /healthz + /metrics "
                    "cover operations.  Jobs are journaled to a durable "
                    "queue, so a killed server resumes pending work on "
                    "restart; results are memoized in the shared campaign "
                    "cache across all clients.",
        epilog=f"Queue state lives under ./service (${SERVICE_DIR_ENV} or "
               f"--queue-dir override); the result cache is the usual "
               f"campaign cache directory.",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321,
                       help="bind port (default 8321; 0 picks a free one)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent jobs in flight (default 2)")
    serve.add_argument("--sim-workers", type=int, default=1,
                       help="simulator processes per job (default 1)")
    serve.add_argument("--queue-dir", default=None,
                       help="service state directory (default ./service, "
                            f"honouring ${SERVICE_DIR_ENV})")
    serve.add_argument("--cache-dir", default=None,
                       help="shared result cache directory (default: the "
                            "campaign cache location)")
    serve.add_argument("--no-cache", action="store_true",
                       help="run every job fresh (disables the shared "
                            "memoization cache)")
    serve.add_argument("--rate", type=float, default=10.0,
                       help="per-client request rate limit in requests/s "
                            "(default 10; 0 disables)")
    serve.add_argument("--burst", type=int, default=20,
                       help="per-client burst allowance (default 20)")
    serve.add_argument("--backend", choices=("stdlib", "uvicorn"),
                       default="stdlib",
                       help="HTTP serving backend (uvicorn only if installed)")
    serve.add_argument("--executor", choices=("local", "dist"),
                       default="local",
                       help="where jobs execute: per-job process pools "
                            "(local, default) or a distributed worker fleet "
                            "shared by every API job (dist)")
    serve.add_argument("--listen", default="127.0.0.1:0",
                       help="with --executor dist: coordinator bind address "
                            "as HOST:PORT for `repro worker --connect` "
                            "(default 127.0.0.1:0)")
    serve.add_argument("--dist-workers", type=int, default=0, metavar="N",
                       help="with --executor dist: also spawn N worker "
                            "processes on this host")

    worker = sub.add_parser(
        "worker",
        help="join a distributed campaign fleet",
        description="Connect to a coordinator started with `repro campaign "
                    "run --executor dist --listen HOST:PORT` (or scenario "
                    "run / serve) and execute whatever chunks it serves: "
                    "pull-based stealing, shared result cache, heartbeat "
                    "liveness.  The process exits when the coordinator "
                    "shuts the fleet down.",
    )
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="the coordinator's --listen address")
    worker.add_argument("--max-tasks", type=int, default=None,
                        help="fault-injection: silently drop the connection "
                             "after simulating this many jobs (emulates a "
                             "SIGKILLed worker; used by the chaos tests)")
    return parser


# ----------------------------------------------------------------------
def _cmd_info(args) -> int:
    config = ArchConfig.from_name(args.config)
    print(config.describe())
    if args.gws is not None:
        lws = optimal_local_size(args.gws, config)
        advisor = TuningAdvisor(config)
        print()
        print(advisor.advise(args.gws).render())
        print()
        print(f"Eq. 1: lws = ceil({args.gws} / {config.hardware_parallelism}) = {lws}")
    return 0


def _cmd_run(args) -> int:
    config = ArchConfig.from_name(args.config)
    problem = make_problem(args.problem, scale=args.scale)
    tracer = Tracer(max_events=500_000) if args.trace else None
    device = Device(config, tracer=tracer)
    result = launch_kernel(device, problem.kernel, problem.arguments, problem.global_size,
                           local_size=args.lws)
    print(problem.summary())
    print(result.summary())
    print(f"  workgroups          : {result.num_workgroups}")
    print(f"  lane utilisation    : {result.dispatch.average_lane_utilization:.1%}")
    print(f"  IPC (warp instr/cyc): {result.counters.ipc:.3f}")
    print(f"  L1 hit rate         : {result.counters.l1_hit_rate:.1%}")
    if args.trace and tracer is not None:
        print()
        print(render_issue_timeline(tracer.events, width=100,
                                    title=f"{problem.name} on {config.name}"))
        print()
        print(render_summary(tracer.events, result.counters,
                             config.threads_per_warp, dropped=tracer.dropped))
    if args.advise:
        print()
        advisor = TuningAdvisor(config)
        print(advisor.advise(problem.global_size, current_local_size=result.local_size,
                             counters=result.counters).render())
    return 0


def _cmd_figure1(args) -> int:
    result = run_figure1(lws_values=tuple(args.lws), length=args.length)
    print(result.render())
    return 0


# ----------------------------------------------------------------------
def _grid_context(args) -> ScenarioContext:
    """A :class:`ScenarioContext` from the shared grid flags."""
    kernels = None
    if getattr(args, "kernels", None):
        kernels = tuple(name.strip() for name in args.kernels.split(",") if name.strip())
    return ScenarioContext(
        scale=args.scale if args.scale else "bench",
        seed=args.seed,
        exact_calls=args.exact_calls,
        problems=kernels,
        sweep=args.sweep,
    )


class _ProgressReporter:
    """Adapts the planner's ``progress(done, total, outcome)`` callback onto
    a :class:`ProgressLine` (built lazily -- the total is only known once the
    planner resolved resume state)."""

    def __init__(self, label: str):
        self.label = label
        self.line: Optional[ProgressLine] = None

    def __call__(self, done: int, total: int, outcome) -> None:
        if self.line is None:
            self.line = ProgressLine(total, label=self.label)
        result = getattr(outcome, "result", outcome)
        self.line.update(done=done, hit=bool(getattr(result, "from_cache", False)))

    def finish(self) -> None:
        if self.line is not None:
            self.line.finish()


def _progress_reporter(args, label: str) -> Optional[_ProgressReporter]:
    return _ProgressReporter(label) if getattr(args, "progress", False) else None


def _run_and_render_sweep(args, runner=None, claims: bool = False) -> "Figure2Result":
    """Shared body of ``sweep`` and ``campaign run``: the figure2 scenario,
    executed without a sink, rendered like the paper's data tables."""
    planner = Planner(runner=runner)
    reporter = _progress_reporter(args, "figure2")
    try:
        run = planner.run(REGISTRY.get("figure2"), _grid_context(args),
                          progress=reporter)
    finally:
        if reporter is not None:
            reporter.finish()
    result = figure2_result_from_run(run)
    print(render_figure2_table(result))
    print()
    print(render_speedup_summary(result))
    if claims:
        print()
        print(evaluate_claims(result).render())
    return result


def _save_sweep_output(result: "Figure2Result", output: Optional[str]) -> None:
    if output:
        result.save_json(output)
        _LOG.info(f"raw records written to {output}")


def _cmd_sweep(args) -> int:
    result = _run_and_render_sweep(args)
    _save_sweep_output(result, args.output)
    return 0


def _cmd_report(args) -> int:
    result = Figure2Result.load_json(args.input)
    print(render_figure2_table(result))
    print()
    print(render_speedup_summary(result))
    if args.claims:
        print()
        print(evaluate_claims(result).render())
    return 0


def _cmd_campaign(args) -> int:
    if args.campaign_command == "status":
        if args.source == "warehouse":
            # Million-row status is a SQL aggregate over the synced store,
            # not a full JSONL re-parse.
            try:
                with _closing_store(args.db, args.backend) as store:
                    print(json.dumps(status_payload(store), indent=2)
                          if args.json else render_status(store))
            except WarehouseError as error:
                _LOG.error(f"error: {error}")
                return 1
            return 0
        stats = ResultCache(args.cache_dir).stats()
        print(json.dumps(stats.to_dict(), indent=2) if args.json
              else stats.render())
        return 0
    if args.campaign_command == "clear-cache":
        cache = ResultCache(args.cache_dir)
        path = cache.directory
        dropped = cache.clear()
        print(f"cleared {dropped} cached result(s) from {path}")
        return 0

    # campaign run
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    dist_executor = _make_executor(args, cache)
    runner = CampaignRunner(workers=args.workers, cache=cache,
                            executor=dist_executor)
    try:
        result = _run_and_render_sweep(args, runner=runner, claims=args.claims)
    finally:
        runner.close()
        if dist_executor is not None:
            dist_executor.close()
    if cache is not None:
        stats = cache.stats()
        _LOG.info(f"cache {stats.path}: {stats.hits} hit(s), "
                  f"{stats.misses} miss(es), {stats.entries} entries")
    _save_sweep_output(result, args.output)
    return 0


def _make_executor(args, cache):
    """The ``--executor dist`` coordinator, or ``None`` for the local path.

    Starts the coordinator (and its cache server, when caching) on
    ``--listen``, optionally spawns ``--dist-workers`` local worker
    processes, and blocks for ``--wait-workers`` joins so the run starts
    against a known fleet.  The caller owns the returned executor and must
    ``close()`` it.
    """
    if getattr(args, "executor", "local") != "dist":
        return None
    from repro.campaign.dist import DistributedExecutor, format_address, parse_address

    host, port = parse_address(args.listen)
    dist_executor = DistributedExecutor(host=host, port=port, cache=cache)
    _LOG.info("distributed coordinator listening",
              listen=format_address(dist_executor.address),
              cache=(format_address(dist_executor.cache_server.address)
                     if dist_executor.cache_server is not None else "off"))
    if args.dist_workers:
        dist_executor.spawn_local_workers(args.dist_workers)
    expected = (args.wait_workers if args.wait_workers is not None
                else args.dist_workers)
    if expected:
        dist_executor.wait_for_workers(expected)
        _LOG.info("worker fleet ready", workers=dist_executor.worker_count)
    return dist_executor


# ----------------------------------------------------------------------
def _closing_store(db, backend, read_only: bool = False):
    """An ``open_store`` wrapped so every CLI exit path closes the handle."""
    import contextlib

    return contextlib.closing(open_store(db, backend=backend, read_only=read_only))


def _cmd_warehouse(args) -> int:
    try:
        if args.warehouse_command == "sync":
            with _closing_store(args.db, args.backend) as store:
                report = warehouse_sync(store, cache_dir=args.cache_dir,
                                        scenario_dir=args.scenario_dir,
                                        telemetry_dir=args.telemetry_dir,
                                        full=args.full)
                print(report.render())
            return 0

        if args.warehouse_command == "rebuild":
            with _closing_store(args.db, args.backend) as store:
                report = warehouse_rebuild(store, cache_dir=args.cache_dir,
                                           scenario_dir=args.scenario_dir,
                                           telemetry_dir=args.telemetry_dir)
                print(report.render())
                if not args.no_verify:
                    mismatches = parity_check(store, cache_dir=args.cache_dir,
                                              scenario_dir=args.scenario_dir,
                                              telemetry_dir=args.telemetry_dir)
                    if mismatches:
                        detail = "\n".join(mismatches)
                        _LOG.error(f"parity check FAILED:\n{detail}")
                        return 1
                    print("parity check passed: warehouse rows bit-equal to "
                          "the journals' last-wins view")
            return 0

        if args.warehouse_command == "status":
            with _closing_store(args.db, args.backend) as store:
                print(render_status(store))
            return 0

        if args.warehouse_command == "query":
            # Read-only connection: raw SQL physically cannot write.
            with _closing_store(args.db, args.backend, read_only=True) as store:
                print(run_sql(store, args.sql).render())
            return 0

        # warehouse report
        if args.list or args.name is None:
            rows = [[canned.name, canned.description]
                    for canned in CANNED.values()]
            print(render_table(["query", "answers"], rows))
            return 0
        with _closing_store(args.db, args.backend, read_only=True) as store:
            result = run_canned(store, args.name)
            print(result.render())
            if not result.rows:
                _LOG.info("(no rows -- has `repro warehouse sync` run since "
                          "the last campaign?)")
        return 0
    except WarehouseError as error:
        _LOG.error(f"error: {error}")
        return 1


# ----------------------------------------------------------------------
#: Comma-separated modules imported before scenario commands run, so custom
#: scenarios registered at import time appear in list/run/resume/report.
SCENARIO_MODULES_ENV = "REPRO_SCENARIO_MODULES"


def _import_scenario_modules() -> None:
    import importlib

    for module in os.environ.get(SCENARIO_MODULES_ENV, "").split(","):
        module = module.strip()
        if module:
            importlib.import_module(module)


def _report_source(args, sink: ResultSink):
    """Where ``scenario report`` reads records from: sink or warehouse.

    ``--source warehouse`` demands the synced store (and errors when the
    sink journal is not fully ingested -- serving a stale projection would
    silently drop recent records).  ``--source auto`` prefers the warehouse
    exactly when it fully covers the sink file, so a freshly appended
    journal transparently falls back to the JSONL path until the next sync.
    """
    if args.source == "journal":
        return sink
    store = open_store(args.db, backend=args.backend)
    if journal_synced(store, sink.path):
        return WarehouseSinkView(store, sink.path)
    store.close()
    if args.source == "warehouse":
        raise WarehouseError(
            f"the warehouse does not (fully) cover {sink.path}; run "
            f"`repro warehouse sync` first, or use --source journal")
    return sink


def _cmd_scenario(args) -> int:
    _import_scenario_modules()
    if args.scenario_command == "list":
        rows = [[scenario.name, scenario.default_scale, scenario.description]
                for scenario in REGISTRY]
        print(render_table(["scenario", "default scale", "description"], rows))
        print(f"\n{len(REGISTRY)} scenario(s) registered; run one with "
              f"`repro scenario run <name> [--scale smoke|bench|paper]`")
        return 0

    try:
        scenario = REGISTRY.get(args.name)
    except UnknownScenarioError as error:
        _LOG.error(f"error: {error.args[0]}")
        return 2

    scale = args.scale if args.scale else scenario.default_scale
    context = _grid_context(args)
    if args.scale is None:
        context = context.with_scale(scale)
    sink = ResultSink(args.sink if args.sink else default_sink_path(scenario.name, scale))

    if args.scenario_command == "report":
        planner = Planner()
        source = None
        try:
            source = _report_source(args, sink)
            run = planner.load(scenario, context, sink=source)
            print(json.dumps(run.payload(), indent=2) if args.json
                  else run.report())
            return 0
        except (ScenarioError, WarehouseError) as error:
            _LOG.error(f"error: {error}")
            return 1
        finally:
            if isinstance(source, WarehouseSinkView):
                source.store.close()

    if args.scenario_command == "resume" and not sink.exists():
        _LOG.error(f"error: no sink at {sink.path} to resume from; "
                   f"start with `repro scenario run {scenario.name}`")
        return 1

    # Non-cacheable scenarios (wall-time measurements) never touch the cache;
    # skip even loading its journal.
    use_cache = scenario.cacheable and not args.no_cache
    cache = ResultCache(args.cache_dir) if use_cache else None
    dist_executor = _make_executor(args, cache)
    runner = CampaignRunner(workers=args.workers, cache=cache,
                            executor=dist_executor)
    planner = Planner(runner=runner)
    fresh = bool(getattr(args, "fresh", False))
    reporter = _progress_reporter(args, scenario.name)
    try:
        run = planner.run(scenario, context, sink=sink, fresh=fresh,
                          progress=reporter)
    except ScenarioError as error:
        _LOG.error(f"error: {error}")
        return 1
    finally:
        if reporter is not None:
            reporter.finish()
        runner.close()
        if dist_executor is not None:
            dist_executor.close()
    _LOG.info(f"scenario {scenario.name!r} ({scale}): {run.stats.render()}")
    _LOG.info(f"sink: {sink.path}")
    print(run.report())
    return 0


# ----------------------------------------------------------------------
def _cmd_telemetry(args) -> int:
    records = list(iter_telemetry_records(args.journal))
    summary = summarize(records)
    if args.telemetry_command == "summary":
        print(to_json(summary) if args.json
              else render_telemetry_summary(summary))
        return 0

    # telemetry export
    if args.format == "prometheus":
        text = to_prometheus(summary)
    elif args.format == "chrome":
        text = json.dumps(to_chrome_trace(records), indent=2) + "\n"
    else:
        text = to_json(summary) + "\n"
    if args.output:
        Path(args.output).write_text(text)
        _LOG.info("telemetry export written", format=args.format,
                  records=len(records), output=args.output)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_serve(args) -> int:
    # Deferred import: the service stack (asyncio server, worker pool) is
    # only needed by this one command.
    from repro.service.routes import Service, ServiceConfig
    from repro.service.server import serve as run_server

    # The service always records telemetry: /metrics is part of its API, and
    # the env var (not just the in-process switch) makes simulator worker
    # processes inherit it.  The process exits when serving stops, so there
    # is nothing to restore.
    os.environ[TELEMETRY_ENV] = "1"
    RECORDER.configure_from_env()

    config = ServiceConfig(
        queue_dir=Path(args.queue_dir) if args.queue_dir else None,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        use_cache=not args.no_cache,
        workers=args.workers,
        sim_workers=args.sim_workers,
        rate=args.rate,
        burst=args.burst,
        executor=args.executor,
        listen=args.listen,
        dist_workers=args.dist_workers,
    )
    service = Service(config)
    if service.executor is not None:
        from repro.campaign.dist import format_address
        _LOG.info("distributed coordinator listening",
                  listen=format_address(service.executor.address))
    _LOG.info("service starting", host=args.host, port=args.port,
              queue=str(service.queue.path),
              cache=(str(service.cache.directory)
                     if service.cache is not None else "off"),
              pending=service.queue.pending_count())
    run_server(service.app, host=args.host, port=args.port,
               backend=args.backend,
               startup=service.startup, shutdown=service.shutdown)
    return 0


def _cmd_worker(args) -> int:
    # Deferred import, like the service: only this command needs the fleet
    # client, and a worker should start fast.
    from repro.campaign.dist import run_worker

    try:
        executed = run_worker(args.connect, max_tasks=args.max_tasks)
    except OSError as error:
        _LOG.error(f"error: cannot reach coordinator at {args.connect}: {error}")
        return 1
    _LOG.info("worker exiting", executed=executed)
    return 0


_COMMANDS = {
    "info": _cmd_info,
    "run": _cmd_run,
    "figure1": _cmd_figure1,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "campaign": _cmd_campaign,
    "scenario": _cmd_scenario,
    "warehouse": _cmd_warehouse,
    "telemetry": _cmd_telemetry,
    "serve": _cmd_serve,
    "worker": _cmd_worker,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging()
    # The engine and the telemetry switch are threaded through the
    # environment rather than through every experiment/campaign signature:
    # Device() resolves the engine wherever one is built and worker
    # processes inherit both variables.  Restored afterwards so in-process
    # callers (tests) are unaffected.
    overrides = {}
    if args.engine is not None:
        overrides[ENGINE_ENV] = args.engine
    if args.telemetry:
        overrides[TELEMETRY_ENV] = "1"
    previous = {env: os.environ.get(env) for env in overrides}
    for env, value in overrides.items():
        os.environ[env] = value
    enabled = RECORDER.configure_from_env()
    try:
        code = _COMMANDS[args.command](args)
        if enabled and args.command != "telemetry":
            written = flush_telemetry(RECORDER)
            if written:
                _LOG.info("telemetry journal updated",
                          path=str(default_journal_path()), records=written)
        return code
    finally:
        for env, value in previous.items():
            if value is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = value
        RECORDER.configure_from_env()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
