"""Declarative scenario specifications.

A :class:`Scenario` is the declarative description of one experiment: a grid
(problems x configs x strategies x engines x seeds, per scale) plus an
analysis hook that turns the completed grid's sink records into a rendered
report.  Adding an experiment to the repository means declaring one of these
and registering it -- the planner, the campaign runner, the result sink, the
CLI and CI all come for free (compare S2RDF's move of compiling declarative
queries onto a precomputed substrate instead of hand-coding each plan).

The grid is expressed as one or more :class:`GridAxes` (a union of cross
products; most scenarios need exactly one).  Axes are either static or a
function of the :class:`ScenarioContext` -- the run-time knobs (scale, seed,
CLI overrides) every ``repro scenario run`` invocation supplies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.campaign.spec import JobSpec
from repro.sim.config import ArchConfig

#: Strategy name meaning "let the runtime pick the lws" (``local_size=None``);
#: everything else resolves through :func:`repro.core.mapper.strategy_by_name`.
RUNTIME_STRATEGY = "runtime"


@dataclass(frozen=True)
class ScenarioContext:
    """Run-time parameters of one scenario execution.

    ``problems`` and ``sweep`` are CLI overrides (``--kernels``/``--sweep``);
    they are ``None`` unless the user asked to reshape the grid, and scenarios
    are free to ignore them (a cache-size sweep has no use for ``--sweep``).
    """

    scale: str = "bench"
    seed: int = 0
    exact_calls: bool = False
    problems: Optional[Tuple[str, ...]] = None
    sweep: Optional[str] = None

    def with_scale(self, scale: str) -> "ScenarioContext":
        return replace(self, scale=scale)


@dataclass(frozen=True)
class GridAxes:
    """One cross product of the scenario grid.

    Every combination of ``problems x configs x strategies x engines x seeds``
    becomes one :class:`~repro.campaign.spec.JobSpec`.  ``sizes`` (parallel to
    nothing -- it is an axis of its own) overrides the flattened global work
    size of sizeable problems; ``None`` keeps the scale's default.
    """

    problems: Tuple[str, ...]
    configs: Tuple[ArchConfig, ...]
    strategies: Tuple[str, ...] = ("ours",)
    engines: Tuple[Optional[str], ...] = (None,)
    seeds: Optional[Tuple[int, ...]] = None        # None -> (context.seed,)
    sizes: Tuple[Optional[int], ...] = (None,)
    scale: Optional[str] = None                    # None -> context.scale
    call_simulation_limit: Optional[int] = None
    collect_trace: bool = False
    #: Extra ``(key, value)`` pairs merged into every job's meta dict -- how a
    #: union-of-grids scenario tags which sub-grid a record came from (e.g.
    #: the ablation tags each overhead sweep with its overhead value).
    tags: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        for name in ("problems", "configs", "strategies", "engines", "sizes"):
            if not getattr(self, name):
                raise ValueError(f"grid axis {name!r} must not be empty")


#: A scenario grid: axes, a union of axes, or a context-dependent factory.
GridSource = Union[
    GridAxes,
    Sequence[GridAxes],
    Callable[[ScenarioContext], Union[GridAxes, Sequence[GridAxes]]],
]


@dataclass(frozen=True)
class PlannedJob:
    """One expanded grid point: the spec plus the axis tags that named it."""

    spec: JobSpec
    engine: Optional[str] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def key(self) -> str:
        """Execution/sink key: the content hash, engine-qualified if pinned.

        The content hash deliberately ignores the engine (the engines are
        bit-identical), so a scenario that compares engines must distinguish
        the two executions of one point here.
        """
        digest = self.spec.content_hash()
        return digest if self.engine is None else f"{self.engine}:{digest}"


@dataclass(frozen=True)
class Scenario:
    """A named, registered experiment: a grid plus an analysis hook.

    ``analyze`` receives the completed run (a ``ScenarioRun``; see
    :mod:`repro.scenarios.planner`) and returns the rendered report.
    ``cacheable=False`` opts the scenario out of the campaign result cache --
    required whenever the *measurement* is wall-clock time (an engine
    comparison served from cache would time nothing).
    """

    name: str
    description: str
    grid: GridSource
    analyze: Callable[["ScenarioRun"], str]         # noqa: F821 - planner type
    default_scale: str = "bench"
    cacheable: bool = True

    def axes(self, context: ScenarioContext) -> List[GridAxes]:
        """The grid as a list of :class:`GridAxes` for ``context``."""
        source = self.grid
        if callable(source):
            source = source(context)
        if isinstance(source, GridAxes):
            return [source]
        axes = list(source)
        if not axes or not all(isinstance(a, GridAxes) for a in axes):
            raise TypeError(
                f"scenario {self.name!r}: grid must yield GridAxes, got {axes!r}")
        return axes
