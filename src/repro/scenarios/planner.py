"""The planner: grid expansion, dedup, sharded execution, streaming sink.

``Planner.plan`` expands a scenario's declarative grid into concrete
:class:`~repro.campaign.spec.JobSpec` objects -- strategies resolved to lws
values against each problem's actual global work size, duplicates collapsed
by (engine-qualified) content hash.  ``Planner.run`` then:

1. loads the :class:`~repro.scenarios.sink.ResultSink` (if any) and drops
   every planned job whose key is already recorded -- this is resume;
2. groups the remaining jobs by pinned engine and splits them into shards,
   each submitted through the existing
   :class:`~repro.campaign.runner.CampaignRunner` (cache-first, deduped,
   parallel workers) with a progress hook that appends one sink record the
   moment each job completes -- a killed run therefore loses at most the
   in-flight jobs, never the finished ones;
3. returns a :class:`ScenarioRun` whose records follow plan order, mixing
   resumed and freshly simulated points indistinguishably.

Failures abort nothing mid-shard (the campaign runner isolates them); they
are collected and raised together at the end, *after* every successful
record has reached the sink, so ``repro scenario resume`` retries only the
failed points.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.result import JobFailure, JobResult
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Campaign, JobSpec
from repro.core.mapper import strategy_by_name
from repro.scenarios.sink import ResultSink, SinkRecord
from repro.scenarios.spec import (
    GridAxes,
    PlannedJob,
    RUNTIME_STRATEGY,
    Scenario,
    ScenarioContext,
)
from repro.telemetry.recorder import RECORDER
from repro.workloads.problems import problem_global_size

#: Default shard size: ``None`` submits one shard per engine group.  The sink
#: is appended per *job* (the campaign progress hook fires on every
#: completion), so smaller shards buy nothing on the happy path -- chunking
#: exists for callers that want to bound how much work a single
#: campaign-runner call (and its worker pool) owns.
DEFAULT_SHARD_SIZE = None


class ScenarioError(RuntimeError):
    """Raised when a scenario run finishes with failed jobs."""


@dataclass(frozen=True)
class PlanStats:
    """Accounting for one :meth:`Planner.run` call."""

    planned: int               # grid points before dedup
    unique: int                # deduplicated jobs (the plan)
    resumed: int               # served from the sink without simulating
    executed: int              # simulated this run
    failed: int
    elapsed_seconds: float

    def render(self) -> str:
        """One-line summary for logs and the CLI."""
        return (f"{self.planned} grid point(s) -> {self.unique} unique job(s): "
                f"{self.resumed} resumed from sink, {self.executed} executed, "
                f"{self.failed} failed in {self.elapsed_seconds:.2f}s")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (``repro scenario report --json``)."""
        return {
            "planned": self.planned,
            "unique": self.unique,
            "resumed": self.resumed,
            "executed": self.executed,
            "failed": self.failed,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class ScenarioRun:
    """One completed scenario execution: plan, records and accounting."""

    scenario: Scenario
    context: ScenarioContext
    plan: List[PlannedJob]
    records: List[SinkRecord]
    stats: PlanStats
    sink_path: Optional[str] = None

    def report(self) -> str:
        """The scenario's analysis, rendered from the sink records."""
        return self.scenario.analyze(self)

    def results(self) -> List[JobResult]:
        """Every record's :class:`JobResult`, in plan order."""
        return [record.result for record in self.records]

    def payload(self) -> Dict[str, object]:
        """The machine-readable run (``repro scenario report --json``).

        Same information as the human report's inputs: the stats plus one
        entry per grid point (key, meta tags, result summary).
        """
        return {
            "scenario": self.scenario.name,
            "scale": self.context.scale,
            "sink": self.sink_path,
            "stats": self.stats.to_dict(),
            "records": [
                {"key": record.key, "hash": record.job_hash,
                 "meta": dict(record.meta), "result": record.result.to_dict()}
                for record in self.records
            ],
        }


class Planner:
    """Expands scenario grids and drives them through the campaign engine."""

    def __init__(self, runner: Optional[CampaignRunner] = None,
                 shard_size: Optional[int] = DEFAULT_SHARD_SIZE):
        if shard_size is not None and shard_size < 1:
            raise ValueError(f"shard_size must be >= 1 or None, got {shard_size}")
        self.runner = runner if runner is not None else CampaignRunner()
        self.shard_size = shard_size

    # ------------------------------------------------------------------
    def plan(self, scenario: Scenario,
             context: Optional[ScenarioContext] = None) -> List[PlannedJob]:
        """Expand the grid into one planned job per grid point, in grid order.

        Axis order is ``seed > problem > size > config > strategy > engine``
        (matching the hand-written drivers, so ported scenarios submit their
        grids in the identical order).  Points whose specs coincide -- two
        strategies resolving to the same lws on some machine -- all stay in
        the plan (each carries its own meta tags for analysis); execution
        dedups them by key (:meth:`unique_jobs`), so every distinct point is
        simulated once and the sink holds exactly one record per key.
        """
        context = context if context is not None else ScenarioContext(
            scale=scenario.default_scale)
        problems_cache: Dict[Tuple[str, str, int, Optional[int]], int] = {}
        jobs: List[PlannedJob] = []
        with RECORDER.span("scenario.plan", scenario=scenario.name,
                           scale=context.scale):
            for axes in scenario.axes(context):
                scale = axes.scale if axes.scale is not None else context.scale
                seeds = axes.seeds if axes.seeds is not None else (context.seed,)
                for seed in seeds:
                    for problem_name in axes.problems:
                        for size in axes.sizes:
                            key = (problem_name, scale, seed, size)
                            if key not in problems_cache:
                                # Size-only: planning must not allocate the
                                # workloads' input data.
                                problems_cache[key] = problem_global_size(
                                    problem_name, scale=scale, seed=seed, size=size)
                            gws = problems_cache[key]
                            for config in axes.configs:
                                for strategy_name in axes.strategies:
                                    if strategy_name == RUNTIME_STRATEGY:
                                        lws = None
                                    else:
                                        lws = strategy_by_name(
                                            strategy_name).select_local_size(gws, config)
                                    for engine in axes.engines:
                                        jobs.append(self._planned_job(
                                            scenario, problem_name, scale, seed, size,
                                            gws, config, strategy_name, lws, engine, axes))
        RECORDER.count("scenario.grid_points", len(jobs))
        return jobs

    @staticmethod
    def unique_jobs(plan: Sequence[PlannedJob]) -> List[PlannedJob]:
        """The deduplicated plan: first job per execution key, in plan order."""
        seen: Dict[str, None] = {}
        unique: List[PlannedJob] = []
        for job in plan:
            if job.key() in seen:
                continue
            seen[job.key()] = None
            unique.append(job)
        return unique

    @staticmethod
    def _planned_job(scenario, problem_name, scale, seed, size, gws, config,
                     strategy_name, lws, engine, axes: GridAxes) -> PlannedJob:
        label = f"{scenario.name}/{problem_name}/{config.name}/{strategy_name}"
        if engine is not None:
            label += f"@{engine}"
        spec = JobSpec(
            problem=problem_name,
            config=config,
            scale=scale,
            seed=seed,
            size=size,
            local_size=lws,
            call_simulation_limit=axes.call_simulation_limit,
            collect_trace=axes.collect_trace,
            label=label,
        )
        meta = {
            "scenario": scenario.name,
            "problem": problem_name,
            "config": config.name,
            "strategy": strategy_name,
            "engine": engine,
            "seed": seed,
            "scale": scale,
            "size": size,
            "gws": gws,
        }
        meta.update(axes.tags)
        return PlannedJob(spec=spec, engine=engine, meta=meta)

    # ------------------------------------------------------------------
    def run(self, scenario: Scenario,
            context: Optional[ScenarioContext] = None,
            sink: Optional[ResultSink] = None,
            fresh: bool = False,
            progress=None,
            plan: Optional[List[PlannedJob]] = None) -> ScenarioRun:
        """Execute the scenario; see the module docstring for the pipeline.

        ``progress(done, total, record_or_failure)`` fires once per job that
        was not resumed from the sink.  ``plan`` accepts a pre-expanded plan
        from :meth:`plan` (for the same scenario and context) so callers that
        already inspected the grid do not pay the expansion twice.
        """
        context = context if context is not None else ScenarioContext(
            scale=scenario.default_scale)
        started = time.perf_counter()
        if plan is None:
            plan = self.plan(scenario, context)
        unique = self.unique_jobs(plan)
        RECORDER.count("scenario.jobs.deduplicated", len(plan) - len(unique))

        if sink is not None and fresh:
            sink.reset()
        done: Dict[str, SinkRecord] = sink.load() if sink is not None else {}
        pending = [job for job in unique if job.key() not in done]
        resumed = len(unique) - len(pending)
        RECORDER.count("scenario.jobs.resumed", resumed)

        runner = self.runner if scenario.cacheable else self.runner.without_cache()

        failures: List[JobFailure] = []
        completed = [0]
        total_pending = len(pending)

        with RECORDER.span("scenario.run", scenario=scenario.name,
                           scale=context.scale, jobs=total_pending):
            for engine, shard in self._shards(pending):
                by_hash = {job.spec.content_hash(): job for job in shard}
                campaign = Campaign(name=scenario.name,
                                    specs=[job.spec for job in shard])

                def on_job(index, total, spec, outcome, _by_hash=by_hash):
                    completed[0] += 1
                    job = _by_hash[spec.content_hash()]
                    if isinstance(outcome, JobResult):
                        record = SinkRecord(
                            key=job.key(),
                            job_hash=spec.content_hash(),
                            scenario=scenario.name,
                            result=outcome,
                            spec=spec.to_dict(),
                            meta=job.meta,
                        )
                        done[job.key()] = record
                        if sink is not None:
                            sink.append(record)
                        if progress is not None:
                            progress(completed[0], total_pending, record)
                    else:
                        failures.append(outcome)
                        if progress is not None:
                            progress(completed[0], total_pending, outcome)

                # The engine rides the runner call (pinned per job wherever
                # it executes), so the runner's executor -- and its warm
                # process pool or connected fleet -- survives across
                # engine-grouped shards instead of being rebuilt per shard.
                runner.run(campaign, progress=on_job, engine=engine)

        executed = total_pending - len(failures)
        stats = PlanStats(
            planned=len(plan),
            unique=len(unique),
            resumed=resumed,
            executed=executed,
            failed=len(failures),
            elapsed_seconds=time.perf_counter() - started,
        )
        if failures:
            detail = "\n".join(f.summary() for f in failures)
            raise ScenarioError(
                f"scenario {scenario.name!r}: {len(failures)} of "
                f"{len(pending)} job(s) failed "
                f"(successful results are in the sink; resume retries only "
                f"the failures)\n{detail}")
        # Fan the one-record-per-key sink state back out to every grid point:
        # a point that deduplicated against another strategy's spec still gets
        # a record carrying its *own* meta tags, so analyses see the full grid.
        records = [replace(done[job.key()], meta=job.meta) for job in plan]
        return ScenarioRun(
            scenario=scenario,
            context=context,
            plan=plan,
            records=records,
            stats=stats,
            sink_path=str(sink.path) if sink is not None else None,
        )

    # ------------------------------------------------------------------
    def load(self, scenario: Scenario,
             context: Optional[ScenarioContext] = None,
             sink: Optional[ResultSink] = None) -> ScenarioRun:
        """Rebuild a completed run from its sink without executing anything.

        This is ``repro scenario report``: plan the grid, resolve every key
        against the sink, and raise :class:`ScenarioError` naming the missing
        jobs if the sink does not cover the whole grid yet.
        """
        context = context if context is not None else ScenarioContext(
            scale=scenario.default_scale)
        plan = self.plan(scenario, context)
        unique = self.unique_jobs(plan)
        done = sink.load() if sink is not None else {}
        missing = [job for job in unique if job.key() not in done]
        if missing:
            names = ", ".join(job.spec.display_name() for job in missing[:5])
            more = "" if len(missing) <= 5 else f", ... ({len(missing) - 5} more)"
            # Echo the grid-shaping flags: resuming with different ones would
            # simulate a *different* grid into the same sink.
            hint = f"repro scenario resume {scenario.name} --scale {context.scale}"
            if context.sweep:
                hint += f" --sweep {context.sweep}"
            if context.seed:
                hint += f" --seed {context.seed}"
            if context.problems:
                hint += f" --kernels {','.join(context.problems)}"
            raise ScenarioError(
                f"scenario {scenario.name!r}: sink covers "
                f"{len(unique) - len(missing)} of {len(unique)} job(s); "
                f"missing {names}{more} -- run `{hint}` to complete it")
        stats = PlanStats(planned=len(plan), unique=len(unique),
                          resumed=len(unique), executed=0, failed=0,
                          elapsed_seconds=0.0)
        return ScenarioRun(
            scenario=scenario,
            context=context,
            plan=plan,
            records=[replace(done[job.key()], meta=job.meta) for job in plan],
            stats=stats,
            sink_path=str(sink.path) if sink is not None else None,
        )

    # ------------------------------------------------------------------
    def _shards(self, pending: Sequence[PlannedJob]):
        """Yield ``(engine, jobs)`` shards: engine groups, optionally chunked.

        Grouping by engine keeps each campaign-runner call homogeneous (the
        engine is passed per call and pinned around every job, wherever it
        executes).  With the default ``shard_size=None`` each engine group
        is one shard; the runner's executor -- and its warm worker pool --
        is shared across all of a submission's shards, and the per-job
        progress hook already streams the sink.  An explicit ``shard_size``
        additionally bounds how much work a single campaign-runner call owns.
        """
        groups: Dict[Optional[str], List[PlannedJob]] = {}
        order: List[Optional[str]] = []
        for job in pending:
            if job.engine not in groups:
                groups[job.engine] = []
                order.append(job.engine)
            groups[job.engine].append(job)
        for engine in order:
            jobs = groups[engine]
            chunk = self.shard_size if self.shard_size is not None else len(jobs)
            for start in range(0, len(jobs), max(chunk, 1)):
                yield engine, jobs[start:start + max(chunk, 1)]


