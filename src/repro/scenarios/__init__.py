"""Declarative scenario layer: one registry + planner + sink behind every
figure, sweep and ablation.

The scenario subsystem sits on top of the campaign engine and below the CLI:

* :mod:`~repro.scenarios.spec` -- :class:`Scenario` declares an experiment as
  grid axes (problems x configs x strategies x engines x seeds) plus an
  analysis hook; :class:`GridAxes` is one cross product, a scenario may union
  several.
* :mod:`~repro.scenarios.registry` -- the process-wide name -> scenario map
  behind ``repro scenario list/run/resume/report``.
* :mod:`~repro.scenarios.planner` -- :class:`Planner` expands grids into
  concrete :class:`~repro.campaign.spec.JobSpec` objects, dedups execution by
  content hash, and submits shards through the existing
  :class:`~repro.campaign.runner.CampaignRunner` (cache, workers, failure
  isolation included).
* :mod:`~repro.scenarios.sink` -- :class:`ResultSink` streams one JSONL
  record per completed job, so an interrupted run resumes without
  re-simulating finished points.
* :mod:`~repro.scenarios.library` -- the built-in scenarios: the four ported
  paper experiments (``figure1``, ``figure2``, ``ablation``, ``claims``) and
  the sweeps the abstraction makes cheap (``scaling``, ``scheduler-sweep``,
  ``engine-compare``, ``cache-sensitivity``).

Quick start::

    from repro.scenarios import Planner, REGISTRY, ResultSink, ScenarioContext

    scenario = REGISTRY.get("scaling")
    run = Planner().run(scenario, ScenarioContext(scale="smoke"),
                        sink=ResultSink("scaling.jsonl"))
    print(run.report())

Declaring a new experiment is a grid plus an analysis function::

    from repro.scenarios import GridAxes, Scenario, register
    from repro.sim.config import ArchConfig

    register(Scenario(
        name="warp-pressure",
        description="cycles vs warps per core",
        grid=GridAxes(problems=("sgemm",),
                      configs=tuple(ArchConfig(cores=4, warps_per_core=w,
                                               threads_per_warp=8)
                                    for w in (2, 4, 8, 16))),
        analyze=lambda run: "\\n".join(
            f"{r.meta['config']}: {r.result.cycles} cycles"
            for r in run.records),
    ))
"""

from repro.scenarios.planner import (
    DEFAULT_SHARD_SIZE,
    PlanStats,
    Planner,
    ScenarioError,
    ScenarioRun,
)
from repro.scenarios.registry import (
    REGISTRY,
    ScenarioRegistry,
    UnknownScenarioError,
    register,
)
from repro.scenarios.sink import (
    DEFAULT_SINK_DIR,
    SINK_DIR_ENV,
    ResultSink,
    SinkRecord,
    default_sink_dir,
    default_sink_path,
)
from repro.scenarios.spec import (
    GridAxes,
    PlannedJob,
    RUNTIME_STRATEGY,
    Scenario,
    ScenarioContext,
)

# Importing the library registers the built-in scenarios as a side effect.
from repro.scenarios import library as _library  # noqa: E402,F401

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "DEFAULT_SINK_DIR",
    "GridAxes",
    "PlanStats",
    "PlannedJob",
    "Planner",
    "REGISTRY",
    "RUNTIME_STRATEGY",
    "ResultSink",
    "SINK_DIR_ENV",
    "Scenario",
    "ScenarioContext",
    "ScenarioError",
    "ScenarioRegistry",
    "ScenarioRun",
    "SinkRecord",
    "UnknownScenarioError",
    "default_sink_dir",
    "default_sink_path",
    "register",
]
