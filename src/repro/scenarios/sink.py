"""Streaming scenario result sink: one JSONL record per completed job.

The :class:`ResultSink` is the persistence layer of a scenario run.  Every
time the planner finishes a grid point it appends one JSON object (the job
key, the full spec, the result summary and the planner's metadata tags) to
the sink file and flushes -- so a run killed mid-grid leaves a readable
journal behind, and a subsequent ``repro scenario resume`` executes only the
jobs whose keys are not yet present.  A partially written trailing line
(the usual artefact of a hard kill) is skipped on load, exactly like the
campaign cache journal.

The sink is scoped per ``(scenario, scale)`` pair by default (see
:func:`default_sink_path`); records written under a different simulator
version are ignored on load, so a version bump forces re-simulation without
touching the file.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Mapping, Optional, Union

from repro.campaign.journal import (
    is_current_record,
    iter_journal_lines,
    terminate_partial_tail,
)
from repro.campaign.result import JobResult
from repro.campaign.spec import CACHE_SCHEMA_VERSION, simulator_version
from repro.telemetry.recorder import RECORDER

#: Environment variable overriding the directory scenario sinks live in.
SINK_DIR_ENV = "REPRO_SCENARIO_DIR"
#: Default directory (relative to the working directory) for scenario sinks.
DEFAULT_SINK_DIR = "scenario-runs"


def default_sink_dir() -> Path:
    """The directory scenario sinks default to (``$REPRO_SCENARIO_DIR`` aware).

    Always absolute: a long-running process (the service daemon) may change
    its working directory after sinks were opened, and a CWD-relative default
    would silently scatter journals -- and make ``discover_journals`` track
    different files than were written.
    """
    override = os.environ.get(SINK_DIR_ENV)
    base = Path(override).expanduser() if override else Path(DEFAULT_SINK_DIR)
    return base if base.is_absolute() else Path.cwd() / base


def default_sink_path(scenario_name: str, scale: str) -> Path:
    """Where ``repro scenario run`` persists a scenario's records by default."""
    return default_sink_dir() / f"{scenario_name}-{scale}.jsonl"


@dataclass(frozen=True)
class SinkRecord:
    """One completed grid point: the spec that named it plus its result.

    ``key`` is the planner's execution key: the spec's content hash, prefixed
    with the engine name when the scenario pins one (the hash deliberately
    ignores the engine -- both produce bit-identical numbers -- but an
    engine-comparison scenario must execute the point once per engine).
    ``meta`` carries the planner's axis tags (strategy label, seed, engine,
    ...) so analysis hooks never have to re-derive them from labels.
    """

    key: str
    job_hash: str
    scenario: str
    result: JobResult
    spec: Mapping[str, object] = field(default_factory=dict)
    meta: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """Serialise to plain JSON types (one sink line)."""
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "simulator": simulator_version(),
            "key": self.key,
            "hash": self.job_hash,
            "scenario": self.scenario,
            "spec": dict(self.spec),
            "meta": dict(self.meta),
            "result": self.result.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SinkRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            key=str(data["key"]),
            job_hash=str(data["hash"]),
            scenario=str(data["scenario"]),
            result=JobResult.from_dict(data["result"]),
            spec=dict(data.get("spec", {})),
            meta=dict(data.get("meta", {})),
        )


class ResultSink:
    """Append-only JSONL store of :class:`SinkRecord` objects."""

    def __init__(self, path: Union[str, Path]):
        # Resolved to absolute at creation time: appends must keep landing in
        # the same file even if the process later calls os.chdir().
        path = Path(path).expanduser()
        self.path = path if path.is_absolute() else Path.cwd() / path
        self.appended = 0          # records written by this instance
        self.skipped = 0           # unusable lines seen by the last load()
        self._tail_checked = False

    # ------------------------------------------------------------------
    def exists(self) -> bool:
        return self.path.exists()

    def iter_records(self) -> Iterator[SinkRecord]:
        """Stream every usable record in journal (append) order.

        The journal is read one line at a time -- a million-record sink never
        materialises in memory.  Lines that are corrupt (partial writes),
        from another simulator version or from another cache schema are
        counted in ``skipped`` (reset when iteration starts) and otherwise
        ignored.  The same key may be yielded more than once; the *last*
        record per key is the journal's truth (:meth:`load` applies that
        fold, streaming consumers such as the warehouse ingest apply it
        themselves via upserts).
        """
        self.skipped = 0
        for data in iter_journal_lines(self.path):
            try:
                if data is None or not is_current_record(data):
                    self.skipped += 1
                    continue
                yield SinkRecord.from_dict(data)
            except (KeyError, TypeError, ValueError):
                self.skipped += 1      # half-written line from a killed run

    def load(self) -> Dict[str, SinkRecord]:
        """Read the journal into ``{key: record}`` (last record per key wins).

        Streaming fold over :meth:`iter_records`; ``skipped`` counts the
        unusable lines seen.
        """
        records: Dict[str, SinkRecord] = {}
        for record in self.iter_records():
            records[record.key] = record
        return records

    def _ensure_trailing_newline(self) -> None:
        """Terminate a half-written tail line before the first append.

        A killed run can leave the journal without a final newline; appending
        straight after it would merge the new record into the partial line
        and corrupt both.  Checked once per sink instance.
        """
        if self._tail_checked:
            return
        self._tail_checked = True
        terminate_partial_tail(self.path)

    def append(self, record: SinkRecord) -> None:
        """Persist one record immediately (flushed, so kills lose at most one)."""
        started = time.perf_counter() if RECORDER.enabled else 0.0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._ensure_trailing_newline()
        with self.path.open("a") as journal:
            journal.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            journal.flush()
            fsync_started = time.perf_counter() if RECORDER.enabled else 0.0
            os.fsync(journal.fileno())
            if RECORDER.enabled:
                now = time.perf_counter()
                RECORDER.observe("sink.fsync_seconds", now - fsync_started)
                RECORDER.observe("sink.append_seconds", now - started)
                RECORDER.count("sink.appends")
        self.appended += 1

    def reset(self) -> None:
        """Delete the journal (``repro scenario run --fresh``)."""
        if self.path.exists():
            self.path.unlink()
