"""The built-in scenario library.

Importing this module registers every built-in scenario in the process-wide
:data:`~repro.scenarios.registry.REGISTRY`:

* the four ported paper experiments -- ``figure1``, ``figure2``,
  ``ablation``, ``claims`` -- which declare exactly the grids the hand-written
  drivers in :mod:`repro.experiments` submit (sharing the grid constants and
  record-conversion helpers, so the numbers are bit-identical), and
* four sweeps the declarative layer makes cheap -- ``scaling`` (cores 1..32
  at fixed gws), ``scheduler-sweep`` (RR vs GTO across kernels),
  ``engine-compare`` (reference vs fast vs batch wall time on identical grids) and
  ``cache-sensitivity`` (L1/L2 capacity sweep).

Each scenario is a grid declaration plus an analysis function over sink
records; none of them owns runner wiring, persistence or CLI flags.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.ablation import (
    BOUNDEDNESS_CONFIG,
    DEFAULT_OVERHEADS,
    OVERHEAD_BASE_CONFIG,
    boundedness_record_from_job,
    overhead_records,
)
from repro.experiments.configs import sweep_by_name
from repro.experiments.claims import evaluate_claims
from repro.experiments.figure1 import (
    FIGURE1_LWS_VALUES,
    FIGURE1_LENGTH,
    FIGURE1_SEED,
    summarize_figure1_launch,
)
from repro.experiments.figure2 import Figure2Result, sweep_record_from_job
from repro.experiments.report import (
    render_figure2_table,
    render_speedup_summary,
    render_table,
)
from repro.scenarios.registry import register
from repro.scenarios.spec import GridAxes, RUNTIME_STRATEGY, Scenario, ScenarioContext
from repro.sim.config import FIGURE1_CONFIG, ArchConfig

#: The default workload set of the sweep-style scenarios (the CLI's
#: ``--kernels`` default); the paper's five math kernels.
DEFAULT_SWEEP_PROBLEMS = ("vecadd", "relu", "saxpy", "sgemm", "knn")


def figure2_result_from_run(run) -> Figure2Result:
    """Rebuild a :class:`Figure2Result` from a run's sink records."""
    return Figure2Result(records=[
        sweep_record_from_job(record.result, str(record.meta["strategy"]))
        for record in run.records
    ])


# ----------------------------------------------------------------------
# Ported paper experiments
# ----------------------------------------------------------------------
def _figure1_grid(context: ScenarioContext) -> GridAxes:
    # The Figure-1 study is scale-independent by construction: the paper pins
    # the machine, the 128-element vector and the four lws values.
    return GridAxes(
        problems=("vecadd",),
        configs=(FIGURE1_CONFIG,),
        strategies=tuple(f"lws={lws}" for lws in FIGURE1_LWS_VALUES),
        seeds=(FIGURE1_SEED,),
        sizes=(FIGURE1_LENGTH,),
        scale="bench",
    )


def _figure1_analyze(run) -> str:
    lines = [
        f"Figure 1 reproduction: vecadd, {run.records[0].result.global_size} "
        f"elements on {run.records[0].result.config_name}",
        "(numbers from sink records; `repro figure1` renders the timelines)",
        "",
    ]
    best: Optional[Tuple[int, int]] = None
    for record in run.records:
        job = record.result
        lines.append(summarize_figure1_launch(
            job.local_size, job.cycles, job.num_calls, job.num_workgroups,
            job.lane_utilization))
        if best is None or job.cycles < best[1]:
            best = (job.local_size, job.cycles)
    lines.extend(["", f"best lws: {best[0]} ({best[1]} cycles)"])
    return "\n".join(lines)


def _figure2_grid(context: ScenarioContext) -> GridAxes:
    return GridAxes(
        problems=context.problems if context.problems else DEFAULT_SWEEP_PROBLEMS,
        configs=tuple(sweep_by_name(context.sweep if context.sweep else "smoke")),
        strategies=("lws=1", "lws=32", "ours"),
        call_simulation_limit=None if context.exact_calls else 3,
    )


def _figure2_analyze(run) -> str:
    result = figure2_result_from_run(run)
    return render_figure2_table(result) + "\n\n" + render_speedup_summary(result)


def _claims_analyze(run) -> str:
    return evaluate_claims(figure2_result_from_run(run)).render()


def _ablation_grid(context: ScenarioContext) -> List[GridAxes]:
    axes = [
        GridAxes(
            problems=("vecadd",),
            configs=(replace(OVERHEAD_BASE_CONFIG, kernel_launch_overhead=overhead),),
            strategies=("naive-lws1", "hardware-aware"),
            call_simulation_limit=3,
            tags=(("study", "overhead"), ("overhead", overhead)),
        )
        for overhead in DEFAULT_OVERHEADS
    ]
    axes.append(GridAxes(
        problems=context.problems if context.problems else DEFAULT_SWEEP_PROBLEMS,
        configs=(BOUNDEDNESS_CONFIG,),
        strategies=(RUNTIME_STRATEGY,),
        tags=(("study", "boundedness"),),
    ))
    return axes


def _ablation_analyze(run) -> str:
    by_study: Dict[str, list] = {"overhead": [], "boundedness": []}
    for record in run.records:
        by_study[str(record.meta["study"])].append(record)

    cycles: Dict[Tuple[int, str], int] = {}
    overheads: List[int] = []
    for record in by_study["overhead"]:
        overhead = int(record.meta["overhead"])
        if overhead not in overheads:
            overheads.append(overhead)
        cycles[(overhead, str(record.meta["strategy"]))] = record.result.cycles
    records = overhead_records(overheads, [
        (cycles[(o, "naive-lws1")], cycles[(o, "hardware-aware")])
        for o in overheads
    ])
    rows = [[str(r.launch_overhead), str(r.naive_cycles), str(r.ours_cycles),
             f"{r.ratio:.2f}"] for r in records]
    lines = [
        "A1 -- launch-overhead sensitivity (vecadd):",
        render_table(["overhead", "naive cycles", "ours cycles", "naive/ours"], rows),
        "",
        "A2 -- memory/compute boundedness:",
    ]
    bound_rows = []
    for record in by_study["boundedness"]:
        b = boundedness_record_from_job(record.result)
        bound_rows.append([b.problem, b.category, b.boundedness,
                           f"{b.memory_intensity:.2f}", f"{b.l1_hit_rate:.1%}",
                           str(b.cycles)])
    lines.append(render_table(
        ["kernel", "category", "bound", "mem intensity", "L1 hit", "cycles"],
        bound_rows))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# New scenarios the declarative layer makes cheap
# ----------------------------------------------------------------------
#: Core counts of the ``scaling`` scenario (1 -> 32 at fixed gws).
SCALING_CORES = (1, 2, 4, 8, 16, 32)


def _scaling_grid(context: ScenarioContext) -> GridAxes:
    return GridAxes(
        problems=context.problems if context.problems else ("vecadd",),
        configs=tuple(ArchConfig(cores=c, warps_per_core=8, threads_per_warp=8)
                      for c in SCALING_CORES),
        strategies=("ours",),
        call_simulation_limit=None if context.exact_calls else 3,
    )


def _scaling_analyze(run) -> str:
    blocks: List[str] = ["Core scaling at fixed gws (hardware-aware mapping):"]
    by_problem: Dict[str, list] = {}
    for record in run.records:
        by_problem.setdefault(str(record.meta["problem"]), []).append(record)
    for problem, records in by_problem.items():
        base = records[0].result.cycles
        rows = []
        for record in records:
            job = record.result
            cores = int(str(record.meta["config"]).split("c", 1)[0])
            speedup = base / job.cycles if job.cycles else 0.0
            rows.append([str(cores), str(job.hardware_parallelism),
                         str(job.local_size), str(job.cycles),
                         f"{speedup:.2f}x", f"{speedup / cores:.1%}"])
        blocks.append(f"\n{problem} (gws={records[0].result.global_size}):")
        blocks.append(render_table(
            ["cores", "hp", "lws", "cycles", "speedup", "efficiency"], rows))
    return "\n".join(blocks)


def _scheduler_grid(context: ScenarioContext) -> List[GridAxes]:
    problems = context.problems if context.problems else ("vecadd", "sgemm", "knn")
    base = ArchConfig(cores=4, warps_per_core=8, threads_per_warp=8)
    return [
        GridAxes(
            problems=problems,
            configs=(replace(base, warp_scheduler=policy),),
            strategies=("ours",),
            call_simulation_limit=None if context.exact_calls else 3,
            tags=(("scheduler", policy),),
        )
        for policy in ("rr", "gto")
    ]


def _scheduler_analyze(run) -> str:
    cycles: Dict[Tuple[str, str], int] = {}
    problems: List[str] = []
    for record in run.records:
        problem = str(record.meta["problem"])
        if problem not in problems:
            problems.append(problem)
        cycles[(problem, str(record.meta["scheduler"]))] = record.result.cycles
    rows = []
    for problem in problems:
        rr, gto = cycles[(problem, "rr")], cycles[(problem, "gto")]
        rows.append([problem, str(rr), str(gto),
                     f"{rr / gto:.3f}" if gto else "-"])
    return ("Warp-scheduler comparison (round-robin vs greedy-then-oldest, "
            "4c8w8t, hardware-aware mapping):\n"
            + render_table(["kernel", "rr cycles", "gto cycles", "rr/gto"], rows))


def _engine_grid(context: ScenarioContext) -> GridAxes:
    return GridAxes(
        problems=context.problems if context.problems else ("vecadd", "sgemm"),
        configs=(ArchConfig(cores=4, warps_per_core=8, threads_per_warp=8),),
        strategies=("ours",),
        engines=("reference", "fast", "batch"),
        call_simulation_limit=None if context.exact_calls else 3,
    )


def _engine_analyze(run) -> str:
    by_point: Dict[Tuple[str, str], Dict[str, object]] = {}
    order: List[Tuple[str, str]] = []
    for record in run.records:
        point = (str(record.meta["problem"]), str(record.meta["config"]))
        if point not in by_point:
            by_point[point] = {}
            order.append(point)
        by_point[point][str(record.meta["engine"])] = record.result
    # Column order follows the grid's engine tiers: reference first, then
    # each accelerated engine with its wall-time ratio over the reference.
    engines = [e for e in ("reference", "fast", "batch")
               if any(e in engines_at for engines_at in by_point.values())]
    accelerated = [e for e in engines if e != "reference"]
    rows = []
    mismatches = 0
    for point in order:
        ref = by_point[point]["reference"]
        identical = all(
            by_point[point][e].cycles == ref.cycles
            and by_point[point][e].counters == ref.counters
            for e in accelerated if e in by_point[point])
        mismatches += 0 if identical else 1
        row = [point[0], point[1], str(ref.cycles),
               "yes" if identical else "NO",
               f"{ref.elapsed_seconds:.2f}s"]
        for e in accelerated:
            result = by_point[point].get(e)
            if result is None:
                row.extend(["-", "-"])
                continue
            ratio = (ref.elapsed_seconds / result.elapsed_seconds
                     if result.elapsed_seconds else 0.0)
            row.extend([f"{result.elapsed_seconds:.2f}s", f"{ratio:.2f}x"])
        rows.append(row)
    verdict = ("bit-identical on every point"
               if mismatches == 0 else f"{mismatches} MISMATCHED point(s)")
    header = ["kernel", "machine", "cycles", "identical", "reference"]
    for e in accelerated:
        header.extend([e, f"{e} x"])
    return (f"Engine comparison ({' vs '.join(engines)}, identical grids, "
            "uncached wall time):\n"
            + render_table(header, rows)
            + f"\n\ncounters {verdict}")


#: (l1_size_words, l2_size_words) points of the ``cache-sensitivity`` sweep;
#: sizes respect the line*ways divisibility the config enforces.
CACHE_SWEEP_POINTS = (
    (1024, 32768),
    (4096, 32768),
    (16384, 32768),
    (4096, 8192),
    (4096, 131072),
)


def _cache_grid(context: ScenarioContext) -> List[GridAxes]:
    problems = context.problems if context.problems else ("sgemm", "knn")
    base = ArchConfig(cores=2, warps_per_core=4, threads_per_warp=8)
    return [
        GridAxes(
            problems=problems,
            configs=(replace(base, l1_size_words=l1, l2_size_words=l2),),
            strategies=("ours",),
            call_simulation_limit=None if context.exact_calls else 3,
            tags=(("l1_words", l1), ("l2_words", l2)),
        )
        for l1, l2 in CACHE_SWEEP_POINTS
    ]


def _cache_analyze(run) -> str:
    rows = []
    for record in run.records:
        job = record.result
        counters = job.perf_counters()
        rows.append([
            str(record.meta["problem"]),
            str(record.meta["l1_words"]), str(record.meta["l2_words"]),
            str(job.cycles), f"{counters.l1_hit_rate:.1%}",
            f"{counters.l2_hit_rate:.1%}",
        ])
    return ("L1/L2 capacity sensitivity (2c4w8t, hardware-aware mapping):\n"
            + render_table(["kernel", "L1 words", "L2 words", "cycles",
                            "L1 hit", "L2 hit"], rows))


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
FIGURE1_SCENARIO = register(Scenario(
    name="figure1",
    description="the paper's Figure-1 trace study: vecadd on 1c2w4t, lws in {1,16,32,64}",
    grid=_figure1_grid,
    analyze=_figure1_analyze,
))

FIGURE2_SCENARIO = register(Scenario(
    name="figure2",
    description="the Figure-2 strategy sweep: kernels x machine grid x {lws=1, lws=32, ours}",
    grid=_figure2_grid,
    analyze=_figure2_analyze,
))

ABLATION_SCENARIO = register(Scenario(
    name="ablation",
    description="A1 launch-overhead sensitivity + A2 memory/compute boundedness",
    grid=_ablation_grid,
    analyze=_ablation_analyze,
))

CLAIMS_SCENARIO = register(Scenario(
    name="claims",
    description="the Section-3 claims (C1-C4) evaluated on the Figure-2 grid",
    grid=_figure2_grid,
    analyze=_claims_analyze,
))

SCALING_SCENARIO = register(Scenario(
    name="scaling",
    description="core scaling 1->32 at fixed gws (warps/threads pinned at 8w8t)",
    grid=_scaling_grid,
    analyze=_scaling_analyze,
))

SCHEDULER_SCENARIO = register(Scenario(
    name="scheduler-sweep",
    description="round-robin vs greedy-then-oldest warp scheduling across kernels",
    grid=_scheduler_grid,
    analyze=_scheduler_analyze,
))

ENGINE_COMPARE_SCENARIO = register(Scenario(
    name="engine-compare",
    description="reference vs fast vs batch engines: bit-identical counters, wall-time ratios",
    grid=_engine_grid,
    analyze=_engine_analyze,
    cacheable=False,
))

CACHE_SENSITIVITY_SCENARIO = register(Scenario(
    name="cache-sensitivity",
    description="L1/L2 capacity sweep on memory-heavy kernels",
    grid=_cache_grid,
    analyze=_cache_analyze,
))
