"""The scenario registry: every runnable experiment, by name.

One process-wide :class:`ScenarioRegistry` (:data:`REGISTRY`) holds every
declared :class:`~repro.scenarios.spec.Scenario`.  The built-in library
(:mod:`repro.scenarios.library`) registers the four ported paper experiments
and the new sweeps on import; downstream code adds its own with
:func:`register` and they immediately appear in ``repro scenario list`` --
no CLI or driver changes required.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.scenarios.spec import Scenario


class UnknownScenarioError(KeyError):
    """Raised when looking up a scenario name that was never registered."""


class ScenarioRegistry:
    """Name -> :class:`Scenario` mapping with first-registration order."""

    def __init__(self):
        self._scenarios: Dict[str, Scenario] = {}

    def register(self, scenario: Scenario, replace: bool = False) -> Scenario:
        """Add one scenario; re-registering a name needs ``replace=True``."""
        if scenario.name in self._scenarios and not replace:
            raise ValueError(f"scenario {scenario.name!r} is already registered "
                             f"(pass replace=True to override)")
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        """Look up one scenario by name."""
        try:
            return self._scenarios[name]
        except KeyError:
            raise UnknownScenarioError(
                f"unknown scenario {name!r}; registered: {', '.join(self.names())}"
            ) from None

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        return list(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self._scenarios.values())


#: The process-wide registry every CLI command and test consults.
REGISTRY = ScenarioRegistry()


def register(scenario: Scenario, replace: bool = False) -> Scenario:
    """Register ``scenario`` in the process-wide :data:`REGISTRY`."""
    return REGISTRY.register(scenario, replace=replace)
